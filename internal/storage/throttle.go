package storage

import (
	"sync"
	"time"
)

// Throttle paces a byte stream to a fixed bandwidth. It is a virtual-time
// pacer: each Acquire reserves the next slot on a single serial timeline, so
// the aggregate throughput of any number of concurrent callers converges to
// BytesPerSec — exactly how a storage device's internal bandwidth behaves
// when several writer threads contend for it (§5.4.1–§5.4.2 of the paper).
//
// Two levels of pacing reproduce the paper's parallel-writer effect:
//
//   - a device-level Throttle shared by everyone caps total bandwidth
//     (attached to the Device via WithSSDThrottle / WithPMEMThrottle);
//   - each writer goroutine additionally paces itself through its own
//     Throttle at the per-thread issue rate (created by the engine, one per
//     writer), so that a single thread cannot saturate the device and p
//     parallel writers genuinely help until the device cap binds.
type Throttle struct {
	mu          sync.Mutex
	bytesPerSec float64
	nextFree    time.Time
}

// NewThrottle returns a pacer capped at bytesPerSec. A non-positive rate
// disables pacing, as does a nil *Throttle.
func NewThrottle(bytesPerSec float64) *Throttle {
	return &Throttle{bytesPerSec: bytesPerSec}
}

// Acquire blocks until n bytes' worth of bandwidth is available.
func (t *Throttle) Acquire(n int) {
	deadline := t.Reserve(n)
	if wait := time.Until(deadline); wait > 0 {
		time.Sleep(wait)
	}
}

// Reserve books n bytes on the pacing timeline and returns the instant the
// transfer would complete, without sleeping. Callers that are paced by two
// throttles at once (a per-writer lane and the device) reserve one and
// Acquire the other, then sleep to the later deadline — the two capacities
// overlap instead of adding up, giving the stream min(laneBW, deviceShare)
// as on real hardware. A nil or unpaced throttle returns the zero time.
func (t *Throttle) Reserve(n int) time.Time {
	if t == nil || t.bytesPerSec <= 0 || n <= 0 {
		return time.Time{}
	}
	// A huge n over a tiny rate overflows the float→Duration conversion:
	// out-of-range conversions are platform-defined (MinInt64 on amd64), so
	// the unguarded arithmetic could produce a *negative* duration, walk the
	// timeline backwards, and silently disable pacing for every later
	// caller. Clamp to ~34 years, far past any deadline a caller waits on.
	const maxReserve = float64(1<<30) * float64(time.Second)
	sec := float64(n) / t.bytesPerSec * float64(time.Second)
	if sec != sec || sec > maxReserve { // NaN or overflow
		sec = maxReserve
	}
	if sec < 0 {
		sec = 0
	}
	d := time.Duration(sec)
	t.mu.Lock()
	now := time.Now()
	start := t.nextFree
	if start.Before(now) {
		start = now
	}
	t.nextFree = start.Add(d)
	deadline := t.nextFree
	t.mu.Unlock()
	return deadline
}

// Rate returns the configured bandwidth in bytes per second (0 when pacing
// is disabled or t is nil).
func (t *Throttle) Rate() float64 {
	if t == nil {
		return 0
	}
	return t.bytesPerSec
}
