package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultDevicePassThrough(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	if d.Size() != 1024 || d.Kind() != KindRAM {
		t.Fatal("metadata not forwarded")
	}
	if err := d.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if err := d.Sync(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Persist([]byte("x"), 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFailAfterCountsCalls(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	custom := errors.New("disk on fire")
	d.FailAfter(OpWrite, 3, custom)
	for i := 0; i < 2; i++ {
		if err := d.WriteAt([]byte("ok"), 0); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if err := d.WriteAt([]byte("boom"), 0); !errors.Is(err, custom) {
		t.Fatalf("3rd write err = %v", err)
	}
	if !d.Fired(OpWrite) {
		t.Fatal("Fired not reported")
	}
	// One-shot: subsequent writes succeed again.
	if err := d.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
}

func TestFailAfterDefaultsToErrInjected(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	d.FailAfter(OpSync, 1, nil)
	if err := d.Sync(0, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	d.FailAfter(OpPersist, 1, nil)
	if err := d.Persist([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("persist err = %v", err)
	}
	d.FailAfter(OpRead, 1, nil)
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v", err)
	}
}

func TestTearNextWritePersistsPrefix(t *testing.T) {
	ram := NewRAM(64)
	d := NewFaultDevice(ram)
	d.TearNextWrite(0.5)
	payload := bytes.Repeat([]byte{0xAB}, 16)
	if err := d.WriteAt(payload, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	got := make([]byte, 16)
	if err := ram.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got[i] != 0xAB {
			t.Fatalf("prefix byte %d missing", i)
		}
	}
	for i := 8; i < 16; i++ {
		if got[i] != 0 {
			t.Fatalf("suffix byte %d written despite tear", i)
		}
	}
}

func TestClearDisarms(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	d.FailAfter(OpWrite, 1, nil)
	d.Clear()
	if err := d.WriteAt([]byte("fine"), 0); err != nil {
		t.Fatalf("cleared fault fired: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpSync.String() != "sync" || Op(99).String() != "op?" {
		t.Fatal("Op strings wrong")
	}
}

func TestScheduleFailsCountConsecutiveCalls(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	d.FailTransient(OpWrite, 2, 3) // calls 2,3,4 fail
	var errs int
	for i := 1; i <= 6; i++ {
		err := d.WriteAt([]byte("x"), 0)
		switch {
		case i >= 2 && i <= 4:
			if !errors.Is(err, ErrInjectedTransient) {
				t.Fatalf("call %d: err = %v, want transient injected", i, err)
			}
			if Classify(err) != ClassTransient {
				t.Fatalf("call %d: class = %v", i, Classify(err))
			}
			errs++
		default:
			if err != nil {
				t.Fatalf("call %d failed unexpectedly: %v", i, err)
			}
		}
	}
	if errs != 3 {
		t.Fatalf("injected %d faults, want 3", errs)
	}
	if got := d.FaultCount(OpWrite); got != 3 {
		t.Fatalf("FaultCount = %d, want 3", got)
	}
}

func TestScheduleCustomErrAndClear(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	boom := errors.New("controller reset")
	d.SetSchedule(OpPersist, Schedule{After: 1, Count: 2, Err: Transient(boom)})
	if err := d.Persist([]byte("x"), 0); !errors.Is(err, boom) || !IsTransient(err) {
		t.Fatalf("err = %v", err)
	}
	d.Clear()
	if err := d.Persist([]byte("x"), 0); err != nil {
		t.Fatalf("cleared schedule still firing: %v", err)
	}
	// Cumulative counts survive Clear.
	if got := d.FaultCount(OpPersist); got != 1 {
		t.Fatalf("FaultCount = %d, want 1", got)
	}
}

func TestFailTransientThenRearm(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	d.FailTransient(OpSync, 1, 1)
	if err := d.Sync(0, 0); !IsTransient(err) {
		t.Fatalf("first sync: %v", err)
	}
	if err := d.Sync(0, 0); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	// Re-arming replaces the exhausted plan.
	d.FailTransient(OpSync, 1, 1)
	if err := d.Sync(0, 0); !IsTransient(err) {
		t.Fatalf("re-armed sync: %v", err)
	}
}
