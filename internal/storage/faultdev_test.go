package storage

import (
	"bytes"
	"errors"
	"testing"
)

func TestFaultDevicePassThrough(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	if d.Size() != 1024 || d.Kind() != KindRAM {
		t.Fatal("metadata not forwarded")
	}
	if err := d.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("got %q", got)
	}
	if err := d.Sync(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := d.Persist([]byte("x"), 10); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFailAfterCountsCalls(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	custom := errors.New("disk on fire")
	d.FailAfter(OpWrite, 3, custom)
	for i := 0; i < 2; i++ {
		if err := d.WriteAt([]byte("ok"), 0); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if err := d.WriteAt([]byte("boom"), 0); !errors.Is(err, custom) {
		t.Fatalf("3rd write err = %v", err)
	}
	if !d.Fired(OpWrite) {
		t.Fatal("Fired not reported")
	}
	// One-shot: subsequent writes succeed again.
	if err := d.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatalf("post-fault write: %v", err)
	}
}

func TestFailAfterDefaultsToErrInjected(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	d.FailAfter(OpSync, 1, nil)
	if err := d.Sync(0, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	d.FailAfter(OpPersist, 1, nil)
	if err := d.Persist([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("persist err = %v", err)
	}
	d.FailAfter(OpRead, 1, nil)
	if err := d.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v", err)
	}
}

func TestTearNextWritePersistsPrefix(t *testing.T) {
	ram := NewRAM(64)
	d := NewFaultDevice(ram)
	d.TearNextWrite(0.5)
	payload := bytes.Repeat([]byte{0xAB}, 16)
	if err := d.WriteAt(payload, 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	got := make([]byte, 16)
	if err := ram.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got[i] != 0xAB {
			t.Fatalf("prefix byte %d missing", i)
		}
	}
	for i := 8; i < 16; i++ {
		if got[i] != 0 {
			t.Fatalf("suffix byte %d written despite tear", i)
		}
	}
}

func TestClearDisarms(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	d.FailAfter(OpWrite, 1, nil)
	d.Clear()
	if err := d.WriteAt([]byte("fine"), 0); err != nil {
		t.Fatalf("cleared fault fired: %v", err)
	}
}

func TestOpString(t *testing.T) {
	if OpWrite.String() != "write" || OpSync.String() != "sync" || Op(99).String() != "op?" {
		t.Fatal("Op strings wrong")
	}
}

func TestScheduleFailsCountConsecutiveCalls(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	d.FailTransient(OpWrite, 2, 3) // calls 2,3,4 fail
	var errs int
	for i := 1; i <= 6; i++ {
		err := d.WriteAt([]byte("x"), 0)
		switch {
		case i >= 2 && i <= 4:
			if !errors.Is(err, ErrInjectedTransient) {
				t.Fatalf("call %d: err = %v, want transient injected", i, err)
			}
			if Classify(err) != ClassTransient {
				t.Fatalf("call %d: class = %v", i, Classify(err))
			}
			errs++
		default:
			if err != nil {
				t.Fatalf("call %d failed unexpectedly: %v", i, err)
			}
		}
	}
	if errs != 3 {
		t.Fatalf("injected %d faults, want 3", errs)
	}
	if got := d.FaultCount(OpWrite); got != 3 {
		t.Fatalf("FaultCount = %d, want 3", got)
	}
}

func TestScheduleCustomErrAndClear(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	boom := errors.New("controller reset")
	d.SetSchedule(OpPersist, Schedule{After: 1, Count: 2, Err: Transient(boom)})
	if err := d.Persist([]byte("x"), 0); !errors.Is(err, boom) || !IsTransient(err) {
		t.Fatalf("err = %v", err)
	}
	d.Clear()
	if err := d.Persist([]byte("x"), 0); err != nil {
		t.Fatalf("cleared schedule still firing: %v", err)
	}
	// Cumulative counts survive Clear.
	if got := d.FaultCount(OpPersist); got != 1 {
		t.Fatalf("FaultCount = %d, want 1", got)
	}
}

func TestFailTransientThenRearm(t *testing.T) {
	d := NewFaultDevice(NewRAM(64))
	d.FailTransient(OpSync, 1, 1)
	if err := d.Sync(0, 0); !IsTransient(err) {
		t.Fatalf("first sync: %v", err)
	}
	if err := d.Sync(0, 0); err != nil {
		t.Fatalf("second sync: %v", err)
	}
	// Re-arming replaces the exhausted plan.
	d.FailTransient(OpSync, 1, 1)
	if err := d.Sync(0, 0); !IsTransient(err) {
		t.Fatalf("re-armed sync: %v", err)
	}
}

func TestCorruptScheduleDamagesSyncedRange(t *testing.T) {
	d := NewFaultDevice(NewRAM(4096))
	want := bytes.Repeat([]byte{0x5A}, 512)
	if err := d.WriteAt(want, 1024); err != nil {
		t.Fatal(err)
	}
	d.SetCorruptSchedule(CorruptSchedule{CorruptAfter: 1, CorruptCount: 1, Mode: CorruptBitFlip, Seed: 7})
	// The sync itself must succeed — latent faults strike after the ack.
	if err := d.Sync(1024, 512); err != nil {
		t.Fatalf("sync reported the latent fault: %v", err)
	}
	got := make([]byte, 512)
	if err := d.ReadAt(got, 1024); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("synced range not corrupted")
	}
	log := d.CorruptLog()
	if len(log) != 1 {
		t.Fatalf("corrupt log has %d records, want 1", len(log))
	}
	r := log[0]
	if r.Mode != CorruptBitFlip || r.Off < 1024 || r.Off+r.Len > 1536 {
		t.Fatalf("damage [%d,%d) mode %v outside the synced range", r.Off, r.Off+r.Len, r.Mode)
	}
	// One-shot: the next sync leaves its range alone.
	if err := d.WriteAt(want, 2048); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(2048, 512); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(got, 2048); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("corruption fired past its count")
	}
}

func TestCorruptScheduleCountsPersists(t *testing.T) {
	d := NewFaultDevice(NewRAM(4096))
	d.SetCorruptSchedule(CorruptSchedule{CorruptAfter: 2, CorruptCount: 2, Mode: CorruptSectorZero, Seed: 1})
	p := bytes.Repeat([]byte{0xFF}, CrashSectorSize)
	// First durable op: not yet armed.
	if err := d.Persist(p, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, CrashSectorSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Fatal("corruption fired before CorruptAfter")
	}
	// Second and third: both damaged, sector-zero leaves whole zero sectors.
	for i := 0; i < 2; i++ {
		off := int64(CrashSectorSize * (i + 1))
		if err := d.Persist(p, off); err != nil {
			t.Fatal(err)
		}
		if err := d.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, make([]byte, CrashSectorSize)) {
			t.Fatalf("persist %d: sector not zeroed", i+2)
		}
	}
	if len(d.CorruptLog()) != 2 {
		t.Fatalf("corrupt log has %d records, want 2", len(d.CorruptLog()))
	}
}

func TestCorruptAtSectorZeroAlignsAndClamps(t *testing.T) {
	d := NewFaultDevice(NewRAM(2 * CrashSectorSize))
	p := bytes.Repeat([]byte{0xAB}, 2*CrashSectorSize)
	if err := d.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	// One byte in sector 1 zeroes all of sector 1 and nothing else.
	if err := d.CorruptAt(int64(CrashSectorSize)+10, 1, CorruptSectorZero); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*CrashSectorSize)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:CrashSectorSize], p[:CrashSectorSize]) {
		t.Fatal("sector 0 collateral damage")
	}
	if !bytes.Equal(got[CrashSectorSize:], make([]byte, CrashSectorSize)) {
		t.Fatal("sector 1 not zeroed")
	}
}

func TestPoisonReadFailsPermanentUntilOverwritten(t *testing.T) {
	d := NewFaultDevice(NewRAM(4096))
	if err := d.WriteAt(bytes.Repeat([]byte{1}, 256), 512); err != nil {
		t.Fatal(err)
	}
	d.PoisonRead(512, 256)
	buf := make([]byte, 128)
	err := d.ReadAt(buf, 600)
	if err == nil {
		t.Fatal("poisoned read succeeded")
	}
	if IsTransient(err) || Classify(err) != ClassPermanent {
		t.Fatalf("poisoned read classified %v, want permanent", Classify(err))
	}
	// Reads outside the poisoned range still work.
	if err := d.ReadAt(buf, 1024); err != nil {
		t.Fatalf("read outside poison: %v", err)
	}
	// Overwriting part of the range heals exactly that part.
	if err := d.WriteAt(bytes.Repeat([]byte{2}, 128), 512); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 512); err != nil {
		t.Fatalf("healed range still poisoned: %v", err)
	}
	if err := d.ReadAt(buf, 640); err == nil {
		t.Fatal("unhealed tail readable")
	}
	// Persist heals too.
	if err := d.Persist(bytes.Repeat([]byte{3}, 128), 640); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 640); err != nil {
		t.Fatalf("persist did not heal: %v", err)
	}
}

func TestClearDisarmsCorruptionAndPoison(t *testing.T) {
	d := NewFaultDevice(NewRAM(1024))
	if err := d.CorruptAt(0, 4, CorruptBitFlip); err != nil {
		t.Fatal(err)
	}
	d.SetCorruptSchedule(CorruptSchedule{CorruptAfter: 1, CorruptCount: 100, Mode: CorruptBitFlip, Seed: 3})
	d.PoisonRead(0, 1024)
	d.Clear()
	buf := make([]byte, 16)
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("poison survived Clear: %v", err)
	}
	if err := d.WriteAt(make([]byte, 16), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(0, 16); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("corruption schedule survived Clear")
		}
	}
	// The log survives Clear: harnesses reconcile against it afterwards.
	if len(d.CorruptLog()) != 1 {
		t.Fatalf("corrupt log has %d records, want 1", len(d.CorruptLog()))
	}
}
