package storage

import (
	"errors"
	"fmt"
	"syscall"
)

// ErrClass partitions device errors by how the engine should react.
// TierCheck-style tiering: a transient fault is worth retrying in place, a
// permanent fault must fail the operation fast, and corruption means the
// bytes read back cannot be trusted even though the I/O "succeeded".
type ErrClass int

const (
	// ClassPermanent errors do not go away by retrying: range violations,
	// closed files, full devices. The default for unclassified errors —
	// retrying an unknown failure against a persistence device is how data
	// gets lost, so the conservative reaction is to fail fast.
	ClassPermanent ErrClass = iota
	// ClassTransient errors are expected to clear on retry: interrupted
	// syscalls, throttle spikes, momentary device resets.
	ClassTransient
	// ClassCorrupt errors mean the device returned data that fails
	// integrity checks. Retrying a read may help (torn concurrent write);
	// retrying a write will not.
	ClassCorrupt
)

func (c ErrClass) String() string {
	switch c {
	case ClassPermanent:
		return "permanent"
	case ClassTransient:
		return "transient"
	case ClassCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("ErrClass(%d)", int(c))
	}
}

// classifiedError tags an error with its ErrClass while preserving the chain
// for errors.Is/As.
type classifiedError struct {
	class ErrClass
	err   error
}

func (e *classifiedError) Error() string          { return e.err.Error() }
func (e *classifiedError) Unwrap() error          { return e.err }
func (e *classifiedError) StorageClass() ErrClass { return e.class }

// Transient wraps err as a retryable device fault. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{class: ClassTransient, err: err}
}

// Permanent wraps err as a non-retryable device fault. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{class: ClassPermanent, err: err}
}

// Corrupt wraps err as an integrity failure. A nil err returns nil.
func Corrupt(err error) error {
	if err == nil {
		return nil
	}
	return &classifiedError{class: ClassCorrupt, err: err}
}

// transientErrnos are the OS-level errors that clear on retry: interrupted
// or would-block syscalls and timeouts. ENOSPC and EIO are deliberately
// absent — a full or failing device is not going to heal between attempts.
var transientErrnos = []syscall.Errno{
	syscall.EINTR,
	syscall.EAGAIN,
	syscall.ETIMEDOUT,
	syscall.EBUSY,
}

// Classify reports the ErrClass of err. Explicit tags (Transient, Permanent,
// Corrupt — anywhere in the wrap chain) win; otherwise OS errors known to be
// retryable classify as transient and everything else, including nil-adjacent
// unknowns, as permanent.
func Classify(err error) ErrClass {
	var ce *classifiedError
	if errors.As(err, &ce) {
		return ce.class
	}
	// Any wrapper exposing StorageClass participates, not just ours.
	var tagged interface{ StorageClass() ErrClass }
	if errors.As(err, &tagged) {
		return tagged.StorageClass()
	}
	for _, errno := range transientErrnos {
		if errors.Is(err, errno) {
			return ClassTransient
		}
	}
	return ClassPermanent
}

// IsTransient reports whether err classifies as a retryable device fault.
func IsTransient(err error) bool { return err != nil && Classify(err) == ClassTransient }

// IsCorrupt reports whether err classifies as an integrity failure.
func IsCorrupt(err error) bool { return err != nil && Classify(err) == ClassCorrupt }
