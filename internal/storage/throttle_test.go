package storage

import (
	"math"
	"testing"
	"time"
)

func TestThrottleReserveAdvancesTimeline(t *testing.T) {
	th := NewThrottle(1 << 20) // 1 MiB/s
	d1 := th.Reserve(1 << 20)
	d2 := th.Reserve(1 << 20)
	if !d2.After(d1) {
		t.Fatalf("second reservation %v not after first %v", d2, d1)
	}
	if gap := d2.Sub(d1); gap < 900*time.Millisecond || gap > 1100*time.Millisecond {
		t.Fatalf("1 MiB at 1 MiB/s reserved %v, want ~1s", gap)
	}
}

func TestThrottleReserveDisabled(t *testing.T) {
	var nilTh *Throttle
	if !nilTh.Reserve(100).IsZero() {
		t.Error("nil throttle reserved a deadline")
	}
	if !NewThrottle(0).Reserve(100).IsZero() {
		t.Error("unpaced throttle reserved a deadline")
	}
	if !NewThrottle(1000).Reserve(0).IsZero() {
		t.Error("zero-byte reservation booked a deadline")
	}
}

// TestThrottleReserveOverflow is the regression for the float→Duration
// overflow: a huge byte count over a tiny rate produced an out-of-range
// conversion (MinInt64 on amd64), so the deadline landed in the distant
// past, the timeline regressed, and pacing was silently disabled for every
// later caller. Before the clamp, both assertions below failed.
func TestThrottleReserveOverflow(t *testing.T) {
	th := NewThrottle(0.5) // 1 byte every 2 seconds
	before := time.Now()
	normal := th.Reserve(1)
	if normal.Before(before) {
		t.Fatalf("sane reservation %v is already in the past", normal)
	}
	huge := th.Reserve(math.MaxInt64)
	if huge.Before(normal) {
		t.Fatalf("overflowing reservation %v regressed before the earlier deadline %v", huge, normal)
	}
	// The timeline must stay monotonic for subsequent callers too: pacing
	// is still in force after the absurd request.
	after := th.Reserve(1)
	if after.Before(huge) {
		t.Fatalf("post-overflow reservation %v regressed before %v — pacing disabled", after, huge)
	}
}
