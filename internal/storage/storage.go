// Package storage provides the persistent-device abstraction the checkpoint
// engine writes to, with implementations for an SSD (file-backed, explicit
// sync — the mmap+msync path of the paper), emulated PMEM (non-temporal
// stores + fences over a pmem.Region), and plain RAM (for tests and for
// modelling Gemini's remote-DRAM target).
//
// Devices optionally carry bandwidth pacing (see Throttle) so that the *real*
// engine reproduces the contention effects the paper measures: a single
// writer thread cannot saturate the device, several writers can, and too many
// concurrent checkpoints merely fight over the same tokens (§5.4.1–§5.4.2).
package storage

import (
	"fmt"
	"io"
	"os"
	"sync"

	"pccheck/internal/pmem"
)

// Kind identifies the persistence technology of a device.
type Kind int

const (
	// KindSSD is a block device persisted with an explicit sync call.
	KindSSD Kind = iota
	// KindPMEM is byte-addressable persistent memory persisted with
	// store+fence sequences.
	KindPMEM
	// KindRAM is volatile memory; Sync is a no-op and nothing survives a
	// crash. Used for tests and for remote-DRAM checkpoint targets.
	KindRAM
	// KindRemote is a remote durability target reached over a network — an
	// object-store bucket or a replication peer. Syncs behave like SSD
	// (explicit barrier); all ops can fail transiently when the remote is
	// unreachable.
	KindRemote
)

func (k Kind) String() string {
	switch k {
	case KindSSD:
		return "ssd"
	case KindPMEM:
		return "pmem"
	case KindRAM:
		return "ram"
	case KindRemote:
		return "remote"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is a fixed-size persistent address space.
//
// WriteAt makes data visible but not necessarily durable. Sync makes all
// writes issued by this goroutine (and, for SSD, by everyone) durable over
// the given range. Persist combines both for the common
// write-and-make-durable case and is the fast path on PMEM (non-temporal
// store + sfence).
type Device interface {
	io.Closer
	// WriteAt stores p at off. Durability requires a subsequent Sync.
	WriteAt(p []byte, off int64) error
	// ReadAt fills p from off.
	ReadAt(p []byte, off int64) error
	// Sync is a persistence barrier covering [off, off+n).
	Sync(off, n int64) error
	// Persist writes p at off and makes it durable before returning.
	Persist(p []byte, off int64) error
	// Size returns the device capacity in bytes.
	Size() int64
	// Kind reports the persistence technology.
	Kind() Kind
}

// Backend is the name the conformance suite (storagetest) gives the Device
// contract: every backend — local, layered or remote — must satisfy the same
// WriteAt/ReadAt/Sync/Persist semantics, proven once by the shared suite.
type Backend = Device

func checkRange(size, off int64, n int) error {
	// off+int64(n) can wrap negative for adversarial offsets near MaxInt64
	// (a corrupt slot or delta header is exactly where such offsets come
	// from), so the bound is checked without computing the sum.
	if off < 0 || n < 0 || int64(n) > size || off > size-int64(n) {
		return fmt.Errorf("storage: range [%d,+%d) outside device of %d bytes", off, n, size)
	}
	return nil
}

// ---------------------------------------------------------------------------
// SSD

// SSD is a file-backed device. Writes go to the page cache; Sync forces them
// to stable storage, mirroring the paper's mmap+msync SSD path.
type SSD struct {
	f        *os.File
	size     int64
	throttle *Throttle
}

// SSDOption configures an SSD device.
type SSDOption func(*SSD)

// WithSSDThrottle paces all writes through th, the device-level bandwidth
// cap.
func WithSSDThrottle(th *Throttle) SSDOption {
	return func(d *SSD) { d.throttle = th }
}

// OpenSSD creates (or truncates) a file-backed device of the given size.
func OpenSSD(path string, size int64, opts ...SSDOption) (*SSD, error) {
	if size < 0 {
		return nil, fmt.Errorf("storage: negative SSD size %d", size)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	d := &SSD{f: f, size: size}
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

// sizeProbes validate a reopened device file's size against whatever
// superblock its first bytes decode to. Registered by format owners (the
// checkpoint core) so the storage layer need not understand their layout.
var (
	sizeProbesMu sync.RWMutex
	sizeProbes   []SizeProbe
)

// SizeProbe inspects the first bytes of a device (at least SizeProbeBytes)
// and, when it recognises a format it owns, returns the device size that
// format requires and ok=true. Unrecognised contents return ok=false.
type SizeProbe func(header []byte) (required int64, ok bool)

// SizeProbeBytes is how many leading device bytes a SizeProbe is handed.
const SizeProbeBytes = 64

// RegisterSizeProbe adds a format's size validator to ReopenSSD. Safe for
// concurrent use; probes run in registration order and the first to
// recognise the header wins.
func RegisterSizeProbe(p SizeProbe) {
	sizeProbesMu.Lock()
	sizeProbes = append(sizeProbes, p)
	sizeProbesMu.Unlock()
}

// validateReopenedSize cross-checks a reopened file's size against the
// registered format probes. A recognised superblock whose required size does
// not match the file — truncated *or* grown — is corruption worth failing at
// open time, not deep in recovery as a confusing range error.
func validateReopenedSize(f *os.File, size int64) error {
	head := make([]byte, SizeProbeBytes)
	if size < SizeProbeBytes {
		return nil // too small to hold any known superblock; probes can't speak
	}
	if _, err := f.ReadAt(head, 0); err != nil {
		return err
	}
	sizeProbesMu.RLock()
	probes := sizeProbes
	sizeProbesMu.RUnlock()
	for _, p := range probes {
		required, ok := p(head)
		if !ok {
			continue
		}
		if required != size {
			return Corrupt(fmt.Errorf("storage: device file is %d bytes but its superblock requires %d (truncated or grown since format)", size, required))
		}
		return nil
	}
	return nil
}

// ReopenSSD opens an existing device file without truncating it — the
// post-crash recovery path. The file size is validated against the
// superblock (via the registered SizeProbes): a truncated or grown device
// file fails here with a classified Corrupt error instead of surfacing later
// as a range error deep in recovery.
func ReopenSSD(path string, opts ...SSDOption) (*SSD, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if err := validateReopenedSize(f, st.Size()); err != nil {
		f.Close()
		return nil, err
	}
	d := &SSD{f: f, size: st.Size()}
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

func (d *SSD) pace(n int) { d.throttle.Acquire(n) }

// WriteAt implements Device.
func (d *SSD) WriteAt(p []byte, off int64) error {
	if err := checkRange(d.size, off, len(p)); err != nil {
		return err
	}
	d.pace(len(p))
	_, err := d.f.WriteAt(p, off)
	return err
}

// ReadAt implements Device.
func (d *SSD) ReadAt(p []byte, off int64) error {
	if err := checkRange(d.size, off, len(p)); err != nil {
		return err
	}
	_, err := d.f.ReadAt(p, off)
	return err
}

// Sync implements Device. File sync has no range granularity; the arguments
// are validated and the whole file is synced, which is what msync over the
// checkpoint mapping amounts to in the paper's implementation.
func (d *SSD) Sync(off, n int64) error {
	if err := checkRange(d.size, off, int(n)); err != nil {
		return err
	}
	return d.f.Sync()
}

// Persist implements Device.
func (d *SSD) Persist(p []byte, off int64) error {
	if err := d.WriteAt(p, off); err != nil {
		return err
	}
	return d.f.Sync()
}

// Size implements Device.
func (d *SSD) Size() int64 { return d.size }

// Kind implements Device.
func (d *SSD) Kind() Kind { return KindSSD }

// Close implements io.Closer. An orderly shutdown implies durability: the
// file is synced before it is closed, so writes since the last explicit Sync
// are not left to the page cache's mercy.
func (d *SSD) Close() error {
	syncErr := d.f.Sync()
	if err := d.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// ---------------------------------------------------------------------------
// PMEM

// PMEMMode selects the persist instruction sequence (§3.3 of the paper).
type PMEMMode int

const (
	// NTStore uses non-temporal stores + sfence (the faster path the paper
	// selects: 4.01 GB/s on their machine).
	NTStore PMEMMode = iota
	// CLWB uses cached stores + clwb + sfence (2.46 GB/s).
	CLWB
)

// PMEM adapts a pmem.Region to the Device interface.
type PMEM struct {
	region   *pmem.Region
	mode     PMEMMode
	throttle *Throttle
}

// PMEMOption configures a PMEM device.
type PMEMOption func(*PMEM)

// WithPMEMMode selects the instruction sequence used by WriteAt/Persist.
func WithPMEMMode(m PMEMMode) PMEMOption { return func(d *PMEM) { d.mode = m } }

// WithPMEMThrottle paces writes through the given device-level cap.
func WithPMEMThrottle(th *Throttle) PMEMOption {
	return func(d *PMEM) { d.throttle = th }
}

// NewPMEM wraps region as a Device.
func NewPMEM(region *pmem.Region, opts ...PMEMOption) *PMEM {
	d := &PMEM{region: region, mode: NTStore}
	for _, o := range opts {
		o(d)
	}
	return d
}

// Region exposes the underlying emulated region (for crash injection in
// tests).
func (d *PMEM) Region() *pmem.Region { return d.region }

func (d *PMEM) pace(n int) { d.throttle.Acquire(n) }

// WriteAt implements Device. In NTStore mode the data is queued for
// persistence and becomes durable at the next Sync (sfence); in CLWB mode it
// is a cached store followed by a write-back, likewise durable at Sync.
func (d *PMEM) WriteAt(p []byte, off int64) error {
	d.pace(len(p))
	switch d.mode {
	case NTStore:
		return d.region.NTStore(int(off), p)
	case CLWB:
		if err := d.region.Store(int(off), p); err != nil {
			return err
		}
		return d.region.WriteBack(int(off), len(p))
	default:
		return fmt.Errorf("storage: unknown PMEM mode %d", d.mode)
	}
}

// ReadAt implements Device.
func (d *PMEM) ReadAt(p []byte, off int64) error {
	return d.region.ReadAt(p, int(off))
}

// Sync implements Device: an sfence.
func (d *PMEM) Sync(off, n int64) error {
	if err := checkRange(int64(d.region.Size()), off, int(n)); err != nil {
		return err
	}
	d.region.Fence()
	return nil
}

// Persist implements Device: store + fence as one durable operation.
func (d *PMEM) Persist(p []byte, off int64) error {
	d.pace(len(p))
	return d.region.Persist(int(off), p)
}

// Size implements Device.
func (d *PMEM) Size() int64 { return int64(d.region.Size()) }

// Kind implements Device.
func (d *PMEM) Kind() Kind { return KindPMEM }

// Close implements io.Closer.
func (d *PMEM) Close() error { return nil }

// ---------------------------------------------------------------------------
// RAM

// RAM is a volatile in-memory device. Sync succeeds but provides no crash
// durability. It backs unit tests and models DRAM checkpoint targets.
type RAM struct {
	mu   sync.RWMutex
	data []byte
}

// NewRAM allocates a zeroed volatile device.
func NewRAM(size int64) *RAM { return &RAM{data: make([]byte, size)} }

// NewRAMFromBytes wraps data as a volatile device without copying — the
// crash explorer mounts each materialized post-crash image this way. The
// device owns data from here on.
func NewRAMFromBytes(data []byte) *RAM { return &RAM{data: data} }

// WriteAt implements Device.
func (d *RAM) WriteAt(p []byte, off int64) error {
	if err := checkRange(int64(len(d.data)), off, len(p)); err != nil {
		return err
	}
	d.mu.Lock()
	copy(d.data[off:], p)
	d.mu.Unlock()
	return nil
}

// ReadAt implements Device.
func (d *RAM) ReadAt(p []byte, off int64) error {
	if err := checkRange(int64(len(d.data)), off, len(p)); err != nil {
		return err
	}
	d.mu.RLock()
	copy(p, d.data[off:])
	d.mu.RUnlock()
	return nil
}

// Sync implements Device (a no-op on volatile memory).
func (d *RAM) Sync(off, n int64) error {
	return checkRange(int64(len(d.data)), off, int(n))
}

// Persist implements Device.
func (d *RAM) Persist(p []byte, off int64) error { return d.WriteAt(p, off) }

// Size implements Device.
func (d *RAM) Size() int64 { return int64(len(d.data)) }

// Kind implements Device.
func (d *RAM) Kind() Kind { return KindRAM }

// Close implements io.Closer.
func (d *RAM) Close() error { return nil }

var (
	_ Device = (*SSD)(nil)
	_ Device = (*PMEM)(nil)
	_ Device = (*RAM)(nil)
)
