// Package storagetest is the shared conformance suite for the
// storage.Backend contract. Every device the engine can sit on — SSD, PMEM,
// RAM, the fault/crash wrappers, the remote object-store stub, and the
// tiered composite — must behave identically at this boundary: bounded
// addressing with no integer-overflow escape hatches, read-your-writes
// visibility, zero-length operations accepted at the size boundary, and a
// stable Size/Kind. Backends register by handing Run a factory; the suite
// runs the same table of subtests against each.
package storagetest

import (
	"bytes"
	"math"
	"testing"

	"pccheck/internal/storage"
)

// Factory builds a fresh, zeroed backend of exactly size bytes. The suite
// owns the returned device and closes it when the subtest finishes.
type Factory func(t *testing.T, size int64) storage.Backend

// Size is the device size the suite requests from factories. Large enough
// to exercise multi-sector offsets, small enough to stay fast.
const Size = int64(4096)

// Run exercises the Backend contract against devices built by factory.
func Run(t *testing.T, factory Factory) {
	t.Helper()

	open := func(t *testing.T) storage.Backend {
		t.Helper()
		dev := factory(t, Size)
		if dev == nil {
			t.Fatal("factory returned nil backend")
		}
		t.Cleanup(func() { dev.Close() })
		return dev
	}

	pattern := func(n int, seed byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = seed + byte(i*7)
		}
		return p
	}

	t.Run("RoundTrip", func(t *testing.T) {
		dev := open(t)
		for _, off := range []int64{0, 1, 511, 512, Size - 64} {
			want := pattern(64, byte(off))
			if err := dev.WriteAt(want, off); err != nil {
				t.Fatalf("WriteAt(%d): %v", off, err)
			}
			got := make([]byte, len(want))
			if err := dev.ReadAt(got, off); err != nil {
				t.Fatalf("ReadAt(%d): %v", off, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("round trip at %d: got %x want %x", off, got[:8], want[:8])
			}
		}
	})

	t.Run("PersistIsVisible", func(t *testing.T) {
		dev := open(t)
		want := pattern(256, 0x5a)
		if err := dev.Persist(want, 128); err != nil {
			t.Fatalf("Persist: %v", err)
		}
		got := make([]byte, len(want))
		if err := dev.ReadAt(got, 128); err != nil {
			t.Fatalf("ReadAt after Persist: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("Persist data not visible to ReadAt")
		}
	})

	t.Run("OverlappingWritesLastWins", func(t *testing.T) {
		dev := open(t)
		a := pattern(100, 0x11)
		b := pattern(100, 0x77)
		if err := dev.WriteAt(a, 100); err != nil {
			t.Fatalf("WriteAt a: %v", err)
		}
		if err := dev.WriteAt(b, 150); err != nil {
			t.Fatalf("WriteAt b: %v", err)
		}
		got := make([]byte, 150)
		if err := dev.ReadAt(got, 100); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if !bytes.Equal(got[:50], a[:50]) || !bytes.Equal(got[50:], b) {
			t.Fatal("overlapping writes: newer write did not win")
		}
	})

	t.Run("SyncCoversRange", func(t *testing.T) {
		dev := open(t)
		if err := dev.WriteAt(pattern(512, 1), 0); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if err := dev.Sync(0, dev.Size()); err != nil {
			t.Fatalf("full-device Sync: %v", err)
		}
		if err := dev.Sync(256, 128); err != nil {
			t.Fatalf("subrange Sync: %v", err)
		}
		if err := dev.Sync(0, dev.Size()+1); err == nil {
			t.Fatal("Sync past device end succeeded")
		}
	})

	t.Run("ZeroLengthAtBoundary", func(t *testing.T) {
		dev := open(t)
		if err := dev.WriteAt(nil, dev.Size()); err != nil {
			t.Fatalf("zero-length WriteAt at size boundary: %v", err)
		}
		if err := dev.ReadAt(nil, dev.Size()); err != nil {
			t.Fatalf("zero-length ReadAt at size boundary: %v", err)
		}
		if err := dev.Sync(dev.Size(), 0); err != nil {
			t.Fatalf("zero-length Sync at size boundary: %v", err)
		}
	})

	t.Run("RejectsOutOfRange", func(t *testing.T) {
		dev := open(t)
		one := []byte{0xff}
		cases := []struct {
			name string
			off  int64
			p    []byte
		}{
			{"negative offset", -1, one},
			{"offset at size", dev.Size(), one},
			{"length past end", dev.Size() - 1, pattern(2, 0)},
			{"length over size", 0, pattern(int(dev.Size())+1, 0)},
		}
		for _, c := range cases {
			if err := dev.WriteAt(c.p, c.off); err == nil {
				t.Errorf("WriteAt %s: no error", c.name)
			}
			if err := dev.ReadAt(make([]byte, len(c.p)), c.off); err == nil {
				t.Errorf("ReadAt %s: no error", c.name)
			}
			if err := dev.Persist(c.p, c.off); err == nil {
				t.Errorf("Persist %s: no error", c.name)
			}
		}
	})

	// The regression surface for the off+n overflow bug: offsets near
	// MaxInt64 must be rejected, not wrapped negative into an accepted
	// (and memory-corrupting) range.
	t.Run("RejectsOffsetOverflow", func(t *testing.T) {
		dev := open(t)
		p := pattern(16, 0)
		for _, off := range []int64{math.MaxInt64, math.MaxInt64 - 8, math.MaxInt64 - int64(len(p)) + 1} {
			if err := dev.WriteAt(p, off); err == nil {
				t.Errorf("WriteAt(off=%d) accepted overflowing range", off)
			}
			if err := dev.ReadAt(make([]byte, len(p)), off); err == nil {
				t.Errorf("ReadAt(off=%d) accepted overflowing range", off)
			}
			if err := dev.Persist(p, off); err == nil {
				t.Errorf("Persist(off=%d) accepted overflowing range", off)
			}
			if err := dev.Sync(off, int64(len(p))); err == nil {
				t.Errorf("Sync(off=%d) accepted overflowing range", off)
			}
		}
		if err := dev.Sync(8, math.MaxInt64-4); err == nil {
			t.Error("Sync with overflowing length accepted")
		}
	})

	t.Run("SizeAndKindStable", func(t *testing.T) {
		dev := open(t)
		if got := dev.Size(); got != Size {
			t.Fatalf("Size() = %d, want %d", got, Size)
		}
		if dev.Kind().String() == "" {
			t.Fatal("Kind().String() is empty")
		}
		if err := dev.WriteAt(pattern(128, 3), 0); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if got := dev.Size(); got != Size {
			t.Fatalf("Size() changed after write: %d", got)
		}
	})
}

// RunCorruption exercises the FaultDevice latent-fault contract with a
// factory-built backend underneath: seeded corruption schedules strike
// already-durable bytes without failing the durability op itself, direct
// CorruptAt damage is visible to reads, and poisoned ranges fail reads
// permanently until overwritten. Every backend the conformance suite
// covers must behave identically under the wrapper — latent faults are a
// property of the injection layer, not of the medium.
func RunCorruption(t *testing.T, factory Factory) {
	t.Helper()

	open := func(t *testing.T) *storage.FaultDevice {
		t.Helper()
		inner := factory(t, Size)
		if inner == nil {
			t.Fatal("factory returned nil backend")
		}
		dev := storage.NewFaultDevice(inner)
		t.Cleanup(func() { dev.Close() })
		return dev
	}

	pattern := func(n int, seed byte) []byte {
		p := make([]byte, n)
		for i := range p {
			p[i] = seed + byte(i*7)
		}
		return p
	}

	t.Run("ScheduledBitFlipAfterSync", func(t *testing.T) {
		dev := open(t)
		want := pattern(512, 0x21)
		if err := dev.WriteAt(want, 1024); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		dev.SetCorruptSchedule(storage.CorruptSchedule{
			CorruptAfter: 1, CorruptCount: 1, Mode: storage.CorruptBitFlip, Seed: 42,
		})
		if err := dev.Sync(1024, 512); err != nil {
			t.Fatalf("Sync surfaced the latent fault: %v", err)
		}
		got := make([]byte, 512)
		if err := dev.ReadAt(got, 1024); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if bytes.Equal(got, want) {
			t.Fatal("synced range not corrupted")
		}
		log := dev.CorruptLog()
		if len(log) != 1 || log[0].Mode != storage.CorruptBitFlip {
			t.Fatalf("corrupt log = %+v, want one bit-flip record", log)
		}
		if log[0].Off < 1024 || log[0].Off+log[0].Len > 1536 {
			t.Fatalf("damage [%d,%d) outside synced range", log[0].Off, log[0].Off+log[0].Len)
		}
	})

	t.Run("ScheduledSectorZeroAfterPersist", func(t *testing.T) {
		dev := open(t)
		dev.SetCorruptSchedule(storage.CorruptSchedule{
			CorruptAfter: 1, CorruptCount: 1, Mode: storage.CorruptSectorZero, Seed: 7,
		})
		want := pattern(storage.CrashSectorSize, 0xEE)
		if err := dev.Persist(want, storage.CrashSectorSize); err != nil {
			t.Fatalf("Persist surfaced the latent fault: %v", err)
		}
		got := make([]byte, storage.CrashSectorSize)
		if err := dev.ReadAt(got, storage.CrashSectorSize); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if !bytes.Equal(got, make([]byte, storage.CrashSectorSize)) {
			t.Fatal("persisted sector not zeroed")
		}
	})

	t.Run("CorruptAtIsVisible", func(t *testing.T) {
		dev := open(t)
		want := pattern(64, 0x33)
		if err := dev.WriteAt(want, 256); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		if err := dev.CorruptAt(256, 64, storage.CorruptBitFlip); err != nil {
			t.Fatalf("CorruptAt: %v", err)
		}
		got := make([]byte, 64)
		if err := dev.ReadAt(got, 256); err != nil {
			t.Fatalf("ReadAt: %v", err)
		}
		if bytes.Equal(got, want) {
			t.Fatal("direct damage not visible")
		}
	})

	t.Run("PoisonReadHealsOnOverwrite", func(t *testing.T) {
		dev := open(t)
		if err := dev.WriteAt(pattern(256, 0x44), 512); err != nil {
			t.Fatalf("WriteAt: %v", err)
		}
		dev.PoisonRead(512, 256)
		buf := make([]byte, 256)
		err := dev.ReadAt(buf, 512)
		if err == nil {
			t.Fatal("poisoned read succeeded")
		}
		if storage.Classify(err) != storage.ClassPermanent {
			t.Fatalf("poisoned read classified %v, want permanent", storage.Classify(err))
		}
		if err := dev.ReadAt(buf, 1024); err != nil {
			t.Fatalf("read outside poison: %v", err)
		}
		heal := pattern(256, 0x55)
		if err := dev.WriteAt(heal, 512); err != nil {
			t.Fatalf("healing WriteAt: %v", err)
		}
		if err := dev.ReadAt(buf, 512); err != nil {
			t.Fatalf("healed range still poisoned: %v", err)
		}
		if !bytes.Equal(buf, heal) {
			t.Fatal("healed range lost the overwrite")
		}
	})
}
