package storagetest

import (
	"net"
	"path/filepath"
	"testing"

	"pccheck/internal/dist"
	"pccheck/internal/pmem"
	"pccheck/internal/storage"
)

// TestConformance runs the shared Backend suite over every device the
// engine can sit on, including the wrappers and the tiered composite.
func TestConformance(t *testing.T) {
	backends := []struct {
		name    string
		factory Factory
	}{
		{"SSD", func(t *testing.T, size int64) storage.Backend {
			dev, err := storage.OpenSSD(filepath.Join(t.TempDir(), "dev.img"), size)
			if err != nil {
				t.Fatalf("OpenSSD: %v", err)
			}
			return dev
		}},
		{"PMEM", func(t *testing.T, size int64) storage.Backend {
			return storage.NewPMEM(pmem.NewRegion(int(size)))
		}},
		{"PMEM-CLWB", func(t *testing.T, size int64) storage.Backend {
			return storage.NewPMEM(pmem.NewRegion(int(size)), storage.WithPMEMMode(storage.CLWB))
		}},
		{"RAM", func(t *testing.T, size int64) storage.Backend {
			return storage.NewRAM(size)
		}},
		{"Fault", func(t *testing.T, size int64) storage.Backend {
			return storage.NewFaultDevice(storage.NewRAM(size))
		}},
		{"Crash", func(t *testing.T, size int64) storage.Backend {
			return storage.NewCrashDevice(size, storage.KindSSD)
		}},
		{"Remote", func(t *testing.T, size int64) storage.Backend {
			return storage.NewRemoteStore(size)
		}},
		{"Replica", func(t *testing.T, size int64) storage.Backend {
			cc, sc := net.Pipe()
			dist.ServeReplica(sc, storage.NewRAM(size))
			dev, err := dist.DialReplica(cc, size, nil)
			if err != nil {
				t.Fatalf("DialReplica: %v", err)
			}
			return dev
		}},
		{"Tiered", func(t *testing.T, size int64) storage.Backend {
			tiered, err := storage.NewTiered([]storage.Device{
				storage.NewRAM(size),
				storage.NewRAM(size),
				storage.NewRemoteStore(size),
			})
			if err != nil {
				t.Fatalf("NewTiered: %v", err)
			}
			return tiered
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) { Run(t, b.factory) })
	}
}

// TestCorruptionConformance runs the latent-fault contract (seeded
// corruption schedules, direct damage, poisoned reads) with each plain
// medium underneath the FaultDevice wrapper.
func TestCorruptionConformance(t *testing.T) {
	backends := []struct {
		name    string
		factory Factory
	}{
		{"SSD", func(t *testing.T, size int64) storage.Backend {
			dev, err := storage.OpenSSD(filepath.Join(t.TempDir(), "dev.img"), size)
			if err != nil {
				t.Fatalf("OpenSSD: %v", err)
			}
			return dev
		}},
		{"PMEM", func(t *testing.T, size int64) storage.Backend {
			return storage.NewPMEM(pmem.NewRegion(int(size)))
		}},
		{"RAM", func(t *testing.T, size int64) storage.Backend {
			return storage.NewRAM(size)
		}},
		{"Remote", func(t *testing.T, size int64) storage.Backend {
			return storage.NewRemoteStore(size)
		}},
	}
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) { RunCorruption(t, b.factory) })
	}
}
