package storage

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"pccheck/internal/obs"
)

const tierTestSize = int64(8192)

func tierImage(t *testing.T, dev Device) []byte {
	t.Helper()
	img := make([]byte, dev.Size())
	if err := dev.ReadAt(img, 0); err != nil {
		t.Fatalf("ReadAt full image: %v", err)
	}
	return img
}

func tierPattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = seed ^ byte(i*13)
	}
	return p
}

// eventCollector is a minimal obs.Observer capturing events for assertions.
type eventCollector struct {
	mu  sync.Mutex
	evs []obs.Event
}

func (c *eventCollector) Emit(ev obs.Event) {
	c.mu.Lock()
	c.evs = append(c.evs, ev)
	c.mu.Unlock()
}

func (c *eventCollector) count(p obs.Phase) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, ev := range c.evs {
		if ev.Phase == p {
			n++
		}
	}
	return n
}

func TestTieredDrainPropagation(t *testing.T) {
	ram0, ram1, remote := NewRAM(tierTestSize), NewRAM(tierTestSize), NewRemoteStore(tierTestSize)
	tiered, err := NewTiered([]Device{ram0, ram1, remote}, WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()

	for i, off := range []int64{0, 1024, 4096, tierTestSize - 512} {
		if err := tiered.Persist(tierPattern(512, byte(i+1)), off); err != nil {
			t.Fatalf("Persist: %v", err)
		}
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	want := tierImage(t, ram0)
	if !bytes.Equal(tierImage(t, ram1), want) {
		t.Error("tier 1 image differs from tier 0 after drain")
	}
	if !bytes.Equal(tierImage(t, remote), want) {
		t.Error("tier 2 (remote) image differs from tier 0 after drain")
	}
}

func TestTieredCommitWatermark(t *testing.T) {
	tiered, err := NewTiered([]Device{NewRAM(tierTestSize), NewRAM(tierTestSize)},
		WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()

	if err := tiered.Persist(tierPattern(256, 9), 0); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	tiered.CommitCheckpoint(7)
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	st := tiered.Status()
	if len(st) != 2 {
		t.Fatalf("Status returned %d rows, want 2", len(st))
	}
	if st[0].Level != 0 || st[0].DurableCounter != 7 {
		t.Errorf("tier 0 status = %+v, want watermark 7", st[0])
	}
	if st[1].DurableCounter != 7 {
		t.Errorf("tier 1 durable counter = %d, want 7 (mark must ride the journal)", st[1].DurableCounter)
	}
	if st[1].Drains == 0 || st[1].DrainedBytes == 0 {
		t.Errorf("tier 1 drain accounting empty: %+v", st[1])
	}
}

func TestTieredTransientFaultRetries(t *testing.T) {
	fault := NewFaultDevice(NewRAM(tierTestSize))
	fault.FailTransient(OpWrite, 1, 2)
	collector := &eventCollector{}
	tiered, err := NewTiered([]Device{NewRAM(tierTestSize), fault},
		WithDrainInterval(200*time.Microsecond),
		WithTierRetry(5, 50*time.Microsecond, time.Millisecond),
		WithTierObserver(collector))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()

	if err := tiered.Persist(tierPattern(512, 3), 128); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge despite retry budget covering the transient run")
	}
	st := tiered.Status()
	if st[1].Errors != 0 {
		t.Errorf("transient faults within the retry budget counted as tier errors: %+v", st[1])
	}
	if fault.FaultCount(OpWrite) != 2 {
		t.Errorf("injected %d write faults, want 2", fault.FaultCount(OpWrite))
	}
	if collector.count(obs.PhaseTierDrain) == 0 {
		t.Error("no PhaseTierDrain events emitted")
	}
}

func TestTieredPermanentFaultGoesStale(t *testing.T) {
	fault := NewFaultDevice(NewRAM(tierTestSize))
	fault.SetSchedule(OpWrite, Schedule{After: 1, Count: 1 << 30}) // every write fails, permanently classified
	collector := &eventCollector{}
	tiered, err := NewTiered([]Device{NewRAM(tierTestSize), fault, NewRAM(tierTestSize)},
		WithDrainInterval(200*time.Microsecond),
		WithTierRetry(2, 50*time.Microsecond, time.Millisecond),
		WithTierObserver(collector))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()

	if err := tiered.Persist(tierPattern(512, 5), 0); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	tiered.CommitCheckpoint(3)

	// The healthy tier 2 converges; the broken tier 1 goes stale, not wrong.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := tiered.Status()
		if st[2].DurableCounter == 3 && st[1].Errors > 0 {
			if st[1].DurableCounter != 0 {
				t.Fatalf("broken tier advanced its durable counter: %+v", st[1])
			}
			if st[1].LastErr == nil {
				t.Fatalf("broken tier has no LastErr: %+v", st[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy tier never converged around the broken one: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if collector.count(obs.PhaseTierError) == 0 {
		t.Error("no PhaseTierError events emitted for the failing tier")
	}
}

func TestTieredJournalOverflowForcesResync(t *testing.T) {
	fault := NewFaultDevice(NewRAM(tierTestSize))
	fault.SetSchedule(OpWrite, Schedule{After: 1, Count: 1 << 30})
	collector := &eventCollector{}
	tiered, err := NewTiered([]Device{NewRAM(tierTestSize), fault},
		WithDrainInterval(200*time.Microsecond),
		WithPendingLimit(2048),
		WithTierRetry(2, 50*time.Microsecond, time.Millisecond),
		WithTierObserver(collector))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()

	// Push well past the pending limit while the tier cannot absorb writes:
	// the journal must trim (bounded memory) and schedule a resync.
	for i := 0; i < 16; i++ {
		if err := tiered.Persist(tierPattern(512, byte(i)), int64(i%8)*1024); err != nil {
			t.Fatalf("Persist: %v", err)
		}
	}
	tiered.CommitCheckpoint(16)

	tiered.mu.Lock()
	pending := tiered.pending
	tiered.mu.Unlock()
	if pending > 2048 {
		t.Fatalf("journal pending bytes %d exceed the configured limit", pending)
	}

	// Heal the tier; the drainer must recover it via full-image resync.
	fault.Clear()
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tier did not recover after faults cleared")
	}
	st := tiered.Status()
	if st[1].Resyncs == 0 {
		t.Errorf("tier recovered without a resync despite losing its journal prefix: %+v", st[1])
	}
	if st[1].DurableCounter != 16 {
		t.Errorf("tier durable counter = %d after resync, want the watermark 16", st[1].DurableCounter)
	}
	if !bytes.Equal(tierImage(t, fault), tierImage(t, tiered.levels[0])) {
		t.Error("tier image differs from tier 0 after resync")
	}
	if collector.count(obs.PhaseTierResync) == 0 {
		t.Error("no PhaseTierResync events emitted")
	}
}

func TestTieredCloseDrainsFinalImage(t *testing.T) {
	ram0, ram1 := NewRAM(tierTestSize), NewRAM(tierTestSize)
	tiered, err := NewTiered([]Device{ram0, ram1}, WithDrainInterval(time.Hour)) // only Close can drain
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	if err := tiered.Persist(tierPattern(1024, 0x42), 2048); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	tiered.CommitCheckpoint(2)
	if err := tiered.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !bytes.Equal(tierImage(t, ram1), tierImage(t, ram0)) {
		t.Error("orderly Close left tier 1 behind tier 0")
	}
}

// slowTier delays lower-tier writes so drain windows stay open long enough
// for the shutdown-race tests to observe them deterministically.
type slowTier struct {
	Device
	delay time.Duration
}

func (s *slowTier) WriteAt(p []byte, off int64) error {
	time.Sleep(s.delay)
	return s.Device.WriteAt(p, off)
}

// Regression test for the drainer shutdown race: a Persist in flight while
// Close runs must either be rejected (the caller knows it is not durable) or
// be included in the final drain — never accepted at tier 0 and then
// silently dropped from the lower tiers.
func TestTieredCloseWaitsForInflightPersists(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		ram0, ram1 := NewRAM(tierTestSize), NewRAM(tierTestSize)
		tiered, err := NewTiered([]Device{ram0, ram1}, WithDrainInterval(time.Hour))
		if err != nil {
			t.Fatalf("NewTiered: %v", err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := 0; i < 4000; i++ {
				off := int64(i%14) * 512
				if err := tiered.Persist(tierPattern(512, byte(i+1)), off); err != nil {
					return // closed under us: the write was rejected, not dropped
				}
				tiered.CommitCheckpoint(uint64(i + 1))
			}
		}()
		time.Sleep(time.Duration(iter%5) * 20 * time.Microsecond)
		if err := tiered.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		<-done
		if !bytes.Equal(tierImage(t, ram1), tierImage(t, ram0)) {
			t.Fatalf("iter %d: Close raced an in-flight persist: tier 1 image differs from tier 0", iter)
		}
	}
}

// Regression test for concurrent Close: a second Close must not return while
// the first is still draining the final image — callers treat a returned
// Close as "every healthy tier holds tier 0's final image".
func TestTieredSecondCloseWaitsForFinalDrain(t *testing.T) {
	ram0, ram1 := NewRAM(tierTestSize), NewRAM(tierTestSize)
	tiered, err := NewTiered([]Device{ram0, &slowTier{Device: ram1, delay: 5 * time.Millisecond}},
		WithDrainInterval(time.Hour)) // only Close can drain
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	for i := 0; i < 8; i++ {
		if err := tiered.Persist(tierPattern(512, byte(i+1)), int64(i)*1024); err != nil {
			t.Fatalf("Persist: %v", err)
		}
	}
	tiered.CommitCheckpoint(8)
	firstDone := make(chan struct{})
	go func() {
		defer close(firstDone)
		if err := tiered.Close(); err != nil {
			t.Errorf("first Close: %v", err)
		}
	}()
	time.Sleep(2 * time.Millisecond) // first Close is now mid final drain
	if err := tiered.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if !bytes.Equal(tierImage(t, ram1), tierImage(t, ram0)) {
		t.Fatal("second Close returned before the final drain completed")
	}
	<-firstDone
}

func TestTieredWritePathFailover(t *testing.T) {
	front := NewFaultDevice(NewRAM(tierTestSize))
	collector := &eventCollector{}
	tiered, err := NewTiered([]Device{front, NewRAM(tierTestSize), NewRemoteStore(tierTestSize)},
		WithDrainInterval(200*time.Microsecond),
		WithFailoverThreshold(2),
		WithTierObserver(collector))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()

	durable := tierPattern(1024, 0xA1)
	if err := tiered.Persist(durable, 0); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	tiered.CommitCheckpoint(1)
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge before the failure")
	}

	// Break the front permanently; the first persist fails within the
	// budget, the second exhausts it, fails over, and succeeds on tier 1.
	front.SetSchedule(OpPersist, Schedule{After: 1, Count: 1 << 30})
	fresh := tierPattern(512, 0xB2)
	var lastErr error
	recovered := false
	for i := 0; i < 4; i++ {
		if err := tiered.Persist(fresh, 2048); err != nil {
			lastErr = err
			continue
		}
		recovered = true
		break
	}
	if !recovered {
		t.Fatalf("persists never recovered after failover: %v", lastErr)
	}
	tiered.CommitCheckpoint(2)

	st := tiered.Status()
	if !st[0].Failed || st[0].Failovers != 1 {
		t.Errorf("tier 0 after failover = %+v, want Failed with 1 failover", st[0])
	}
	if st[0].Active || !st[1].Active {
		t.Errorf("active flag did not move to tier 1: %+v", st[:2])
	}
	if st[1].DurableCounter != 2 {
		t.Errorf("new front durable counter = %d, want the watermark 2", st[1].DurableCounter)
	}

	// The new front carries both the catch-up state and the retried write.
	got := make([]byte, 1024)
	if err := tiered.ReadAt(got, 0); err != nil {
		t.Fatalf("ReadAt after failover: %v", err)
	}
	if !bytes.Equal(got, durable) {
		t.Error("durable floor lost in failover: pre-failure persist missing from new front")
	}
	if err := tiered.ReadAt(got[:512], 2048); err != nil {
		t.Fatalf("ReadAt after failover: %v", err)
	}
	if !bytes.Equal(got[:512], fresh) {
		t.Error("retried persist missing from new front")
	}

	// The remaining lower tier keeps draining below the new front.
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("remaining tier did not converge after failover")
	}
	if !bytes.Equal(tierImage(t, tiered.levels[2]), tierImage(t, tiered.levels[1])) {
		t.Error("tier 2 image differs from the new front after drain")
	}
	if collector.count(obs.PhaseTierFailover) != 1 {
		t.Errorf("PhaseTierFailover events = %d, want 1", collector.count(obs.PhaseTierFailover))
	}
}

func TestTieredFailoverExhaustsCandidates(t *testing.T) {
	front := NewFaultDevice(NewRAM(tierTestSize))
	lower := NewFaultDevice(NewRAM(tierTestSize))
	tiered, err := NewTiered([]Device{front, lower},
		WithDrainInterval(200*time.Microsecond),
		WithFailoverThreshold(1))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()
	if err := tiered.Persist(tierPattern(256, 1), 0); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	front.SetSchedule(OpPersist, Schedule{After: 1, Count: 1 << 30})
	lower.SetSchedule(OpPersist, Schedule{After: 1, Count: 1 << 30})
	if err := tiered.Persist(tierPattern(256, 2), 1024); err == nil {
		t.Fatal("persist succeeded with every tier broken")
	}
	st := tiered.Status()
	if !st[0].Failed || !st[1].Failed {
		t.Errorf("both tiers should be failed: %+v", st)
	}
	// The composite still answers reads (only persists were broken).
	if err := tiered.ReadAt(make([]byte, 256), 0); err != nil {
		t.Errorf("ReadAt after exhausted failover: %v", err)
	}
}

func TestTieredScheduleResyncRepairsTier(t *testing.T) {
	ram0, ram1 := NewRAM(tierTestSize), NewRAM(tierTestSize)
	tiered, err := NewTiered([]Device{ram0, ram1}, WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()
	if err := tiered.Persist(tierPattern(1024, 0x61), 512); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	// Damage the lower tier behind the composite's back (a scrubber finding),
	// then ask for repair-by-resync.
	if err := ram1.WriteAt(make([]byte, 1024), 512); err != nil {
		t.Fatalf("corrupting WriteAt: %v", err)
	}
	if tiered.ScheduleResync(0) {
		t.Error("ScheduleResync accepted the front tier")
	}
	if tiered.ScheduleResync(7) {
		t.Error("ScheduleResync accepted a nonexistent level")
	}
	if !tiered.ScheduleResync(1) {
		t.Fatal("ScheduleResync rejected a live lower tier")
	}
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("resync did not converge")
	}
	if !bytes.Equal(tierImage(t, ram1), tierImage(t, ram0)) {
		t.Error("resync did not restore the lower tier image")
	}
	if st := tiered.Status(); st[1].Resyncs == 0 {
		t.Errorf("resync not counted: %+v", st[1])
	}
}

func TestTieredRejectsSmallLowerTier(t *testing.T) {
	_, err := NewTiered([]Device{NewRAM(4096), NewRAM(1024)})
	if err == nil {
		t.Fatal("NewTiered accepted a lower tier smaller than tier 0")
	}
}

func TestTieredMarksDrainFloorOnCrashTier(t *testing.T) {
	crash := NewCrashDevice(tierTestSize, KindSSD)
	tiered, err := NewTiered([]Device{NewRAM(tierTestSize), crash},
		WithDrainInterval(200*time.Microsecond))
	if err != nil {
		t.Fatalf("NewTiered: %v", err)
	}
	defer tiered.Close()
	if err := tiered.Persist(tierPattern(512, 1), 0); err != nil {
		t.Fatalf("Persist: %v", err)
	}
	tiered.CommitCheckpoint(11)
	if !tiered.WaitDrained(5 * time.Second) {
		t.Fatal("tiers did not converge")
	}
	if got := crash.HighestMark(crash.Ops()); got != 11 {
		t.Fatalf("crash-tier journal carries ack floor %d, want 11", got)
	}
}
