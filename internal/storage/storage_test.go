package storage

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pccheck/internal/pmem"
)

func TestKindString(t *testing.T) {
	if KindSSD.String() != "ssd" || KindPMEM.String() != "pmem" || KindRAM.String() != "ram" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatalf("unknown kind: %s", Kind(9))
	}
}

func deviceContract(t *testing.T, d Device, size int64) {
	t.Helper()
	if d.Size() != size {
		t.Fatalf("Size = %d, want %d", d.Size(), size)
	}
	msg := []byte("the quick brown fox")
	if err := d.WriteAt(msg, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	if err := d.Sync(100, int64(len(msg))); err != nil {
		t.Fatal(err)
	}
	if err := d.Persist([]byte("xyz"), 0); err != nil {
		t.Fatal(err)
	}
	got3 := make([]byte, 3)
	if err := d.ReadAt(got3, 0); err != nil {
		t.Fatal(err)
	}
	if string(got3) != "xyz" {
		t.Fatalf("Persist read back %q", got3)
	}
	// Out-of-range operations must fail cleanly.
	if err := d.WriteAt(msg, size-1); err == nil {
		t.Fatal("out-of-range write succeeded")
	}
	if err := d.ReadAt(make([]byte, 2), size-1); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	if err := d.WriteAt(msg, -1); err == nil {
		t.Fatal("negative offset write succeeded")
	}
	if err := d.Sync(size, 1); err == nil {
		t.Fatal("out-of-range sync succeeded")
	}
}

func TestSSDContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev")
	d, err := OpenSSD(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	deviceContract(t, d, 4096)
}

func TestPMEMContract(t *testing.T) {
	d := NewPMEM(pmem.NewRegion(4096))
	deviceContract(t, d, 4096)
}

func TestPMEMCLWBContract(t *testing.T) {
	d := NewPMEM(pmem.NewRegion(4096), WithPMEMMode(CLWB))
	deviceContract(t, d, 4096)
}

func TestRAMContract(t *testing.T) {
	deviceContract(t, NewRAM(4096), 4096)
}

func TestSSDReopenPreservesContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev")
	d, err := OpenSSD(path, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Persist([]byte("persist-me"), 7); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := ReopenSSD(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != 1024 {
		t.Fatalf("reopened size = %d", d2.Size())
	}
	got := make([]byte, 10)
	if err := d2.ReadAt(got, 7); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist-me" {
		t.Fatalf("reopened contents %q", got)
	}
}

func TestOpenSSDNegativeSize(t *testing.T) {
	if _, err := OpenSSD(filepath.Join(t.TempDir(), "x"), -1); err == nil {
		t.Fatal("negative size should error")
	}
}

func TestPMEMWriteAtDurableOnlyAfterSync(t *testing.T) {
	region := pmem.NewRegion(256)
	d := NewPMEM(region)
	if err := d.WriteAt([]byte("dataA"), 0); err != nil {
		t.Fatal(err)
	}
	region.Crash(pmem.DropAll)
	got := make([]byte, 5)
	_ = d.ReadAt(got, 0)
	if string(got) == "dataA" {
		t.Fatal("WriteAt without Sync survived crash")
	}

	region2 := pmem.NewRegion(256)
	d2 := NewPMEM(region2)
	_ = d2.WriteAt([]byte("dataB"), 0)
	if err := d2.Sync(0, 5); err != nil {
		t.Fatal(err)
	}
	region2.Crash(pmem.DropAll)
	_ = d2.ReadAt(got, 0)
	if string(got) != "dataB" {
		t.Fatal("WriteAt+Sync lost on crash")
	}
}

func TestPMEMCLWBDurability(t *testing.T) {
	region := pmem.NewRegion(256)
	d := NewPMEM(region, WithPMEMMode(CLWB))
	_ = d.WriteAt([]byte("clwb-path"), 64)
	_ = d.Sync(64, 9)
	region.Crash(pmem.DropAll)
	got := make([]byte, 9)
	_ = d.ReadAt(got, 64)
	if string(got) != "clwb-path" {
		t.Fatal("CLWB+fence data lost")
	}
}

func TestNilThrottleIsNoOp(t *testing.T) {
	var th *Throttle
	start := time.Now()
	th.Acquire(1 << 30)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("nil throttle slept")
	}
	if th.Rate() != 0 {
		t.Fatal("nil throttle rate nonzero")
	}
}

func TestThrottleRate(t *testing.T) {
	// 10 MB/s; acquiring 1 MB should take ~100 ms.
	th := NewThrottle(10 << 20)
	start := time.Now()
	th.Acquire(1 << 20)
	elapsed := time.Since(start)
	if elapsed < 60*time.Millisecond || elapsed > 400*time.Millisecond {
		t.Fatalf("1 MB at 10 MB/s took %v, want ~100ms", elapsed)
	}
	if th.Rate() != float64(10<<20) {
		t.Fatalf("Rate = %v", th.Rate())
	}
}

func TestThrottleAggregateAcrossGoroutines(t *testing.T) {
	// 4 goroutines sharing a 20 MB/s device writing 1 MB each ⇒ ≥ ~200 ms
	// total, i.e. concurrency must NOT multiply bandwidth.
	th := NewThrottle(20 << 20)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th.Acquire(1 << 20)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("4 MB at 20 MB/s finished in %v; throttle leaked bandwidth", elapsed)
	}
}

func TestThrottleDisabled(t *testing.T) {
	th := NewThrottle(0)
	start := time.Now()
	th.Acquire(1 << 30)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("disabled throttle slept")
	}
}

func TestThrottledSSDPacesWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev")
	d, err := OpenSSD(path, 1<<20, WithSSDThrottle(NewThrottle(5<<20))) // 5 MB/s
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	buf := make([]byte, 512<<10) // 512 KB ⇒ ~100 ms
	start := time.Now()
	if err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("throttled write returned in %v", elapsed)
	}
}

func TestRAMConcurrentAccess(t *testing.T) {
	d := NewRAM(1 << 16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			block := bytes.Repeat([]byte{byte(i + 1)}, 1024)
			for j := 0; j < 100; j++ {
				if err := d.WriteAt(block, int64(i*1024)); err != nil {
					t.Error(err)
					return
				}
				got := make([]byte, 1024)
				if err := d.ReadAt(got, int64(i*1024)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		got := make([]byte, 1024)
		_ = d.ReadAt(got, int64(i*1024))
		for _, b := range got {
			if b != byte(i+1) {
				t.Fatalf("region %d corrupted", i)
			}
		}
	}
}
