package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrRemoteUnreachable is the (transient-classified) failure every operation
// on an unreachable RemoteStore returns. The tiered drainer's retry/backoff
// absorbs short outages; a long outage just leaves the remote tier stale.
var ErrRemoteUnreachable = errors.New("storage: remote store unreachable")

// RemoteStore is the object-store stub tier: an in-memory address space
// behind a modelled network — per-operation round-trip latency, optional
// bandwidth pacing, and a reachability switch whose failures classify as
// transient. It is the slowest, safest level of a Tiered device in tests and
// benches, and the shape a real S3/GCS adapter would take (same Device
// surface, same transient-error contract).
type RemoteStore struct {
	mu   sync.RWMutex
	data []byte

	rtt      time.Duration
	throttle *Throttle
	down     atomic.Bool
	ops      atomic.Uint64
	faults   atomic.Uint64
}

// RemoteOption configures a RemoteStore.
type RemoteOption func(*RemoteStore)

// WithRemoteRTT models the per-operation network round trip.
func WithRemoteRTT(d time.Duration) RemoteOption {
	return func(r *RemoteStore) { r.rtt = d }
}

// WithRemoteThrottle paces writes through the given bandwidth cap — the
// uplink, in this model.
func WithRemoteThrottle(th *Throttle) RemoteOption {
	return func(r *RemoteStore) { r.throttle = th }
}

// NewRemoteStore allocates a reachable remote tier of the given size.
func NewRemoteStore(size int64, opts ...RemoteOption) *RemoteStore {
	if size < 0 {
		panic("storage: negative RemoteStore size")
	}
	r := &RemoteStore{data: make([]byte, size)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// SetReachable flips the modelled network: while false, every operation
// fails with a transient ErrRemoteUnreachable. The chaos knob behind the
// tier-teardown sweeps.
func (r *RemoteStore) SetReachable(up bool) { r.down.Store(!up) }

// Ops returns how many operations the store served; Faults how many it
// rejected while unreachable.
func (r *RemoteStore) Ops() uint64    { return r.ops.Load() }
func (r *RemoteStore) Faults() uint64 { return r.faults.Load() }

func (r *RemoteStore) roundTrip() error {
	if r.down.Load() {
		r.faults.Add(1)
		return Transient(ErrRemoteUnreachable)
	}
	if r.rtt > 0 {
		time.Sleep(r.rtt)
	}
	r.ops.Add(1)
	return nil
}

// WriteAt implements Device.
func (r *RemoteStore) WriteAt(p []byte, off int64) error {
	if err := checkRange(int64(len(r.data)), off, len(p)); err != nil {
		return err
	}
	if err := r.roundTrip(); err != nil {
		return err
	}
	r.throttle.Acquire(len(p))
	r.mu.Lock()
	copy(r.data[off:], p)
	r.mu.Unlock()
	return nil
}

// ReadAt implements Device.
func (r *RemoteStore) ReadAt(p []byte, off int64) error {
	if err := checkRange(int64(len(r.data)), off, len(p)); err != nil {
		return err
	}
	if err := r.roundTrip(); err != nil {
		return err
	}
	r.mu.RLock()
	copy(p, r.data[off:])
	r.mu.RUnlock()
	return nil
}

// Sync implements Device: an object store acks writes durably, so the
// barrier is a round trip with nothing left to flush.
func (r *RemoteStore) Sync(off, n int64) error {
	if err := checkRange(int64(len(r.data)), off, int(n)); err != nil {
		return err
	}
	return r.roundTrip()
}

// Persist implements Device.
func (r *RemoteStore) Persist(p []byte, off int64) error {
	return r.WriteAt(p, off)
}

// Size implements Device.
func (r *RemoteStore) Size() int64 { return int64(len(r.data)) }

// Kind implements Device.
func (r *RemoteStore) Kind() Kind { return KindRemote }

// Close implements io.Closer.
func (r *RemoteStore) Close() error { return nil }

var _ Device = (*RemoteStore)(nil)
