package storage

import (
	"fmt"
	"math/rand"
	"sync"
)

// CrashDevice wraps an in-memory device image and journals every mutating
// operation — the instrument behind the crash-point explorer
// (internal/core.ExploreCrashes). Where FaultDevice injects *reported*
// errors (the device says "I failed" and the caller reacts), CrashDevice
// models the failure no code path ever sees coming: power loss. It records
// the ordered stream of WriteAt/Sync/Persist calls and can materialize, for
// any operation boundary and any cache-loss schedule, the exact bytes a
// post-reboot remap of the device would observe.
//
// The durability model is deliberately the weakest one consistent with both
// real backends:
//
//   - WriteAt lands in the volatile write-back cache. At crash time each
//     un-synced write may be dropped entirely, applied fully, or torn at
//     sector granularity — and because fates are decided per write, an older
//     write can survive while a newer overlapping one is lost (reordering).
//   - Sync(off, n) makes every journaled write that overlaps [off, off+n)
//     durable, in journal order. This under-promises relative to SSD.Sync
//     (which syncs the whole file) and pmem.Region.Fence (which persists all
//     pending lines); code that is correct here is correct on both.
//   - Persist(p, off) journals as WriteAt followed by Sync over the same
//     range — two ops, so the explorer can cut power between them and hand
//     the record write to the tearing adversary. On the live device the pair
//     is applied atomically.
//
// A CrashDevice never fails an operation; it only remembers. All methods are
// safe for concurrent use and the journal order is the serialization order
// of the device's mutations.
type CrashDevice struct {
	kind Kind

	mu      sync.Mutex
	buf     []byte // live program-visible contents
	journal []CrashOp
}

// CrashOpKind discriminates journal entries.
type CrashOpKind uint8

// Journal entry kinds.
const (
	// CrashOpWrite is a WriteAt: volatile until covered by a sync.
	CrashOpWrite CrashOpKind = iota
	// CrashOpSync is a persistence barrier over a range.
	CrashOpSync
	// CrashOpMark is an explorer annotation (e.g. "checkpoint counter C was
	// acknowledged here"); it does not touch the device.
	CrashOpMark
)

func (k CrashOpKind) String() string {
	switch k {
	case CrashOpWrite:
		return "write"
	case CrashOpSync:
		return "sync"
	case CrashOpMark:
		return "mark"
	default:
		return "op?"
	}
}

// CrashOp is one journaled device operation.
type CrashOp struct {
	Kind CrashOpKind
	// Off and Data describe a write (Data is a private copy); Off and N a
	// sync range.
	Off  int64
	Data []byte
	N    int64
	// Value carries the annotation of a mark op.
	Value uint64
}

// CrashSectorSize is the tear granularity of un-synced writes: at crash time
// an un-synced write survives as an arbitrary subset of its sectors.
const CrashSectorSize = 512

// CrashChooser decides the fate of one sector of one un-synced write at
// crash time: writeIdx is the write's position among the pending writes (in
// journal order), sector the CrashSectorSize-granular index within that
// write. Returning true lands the sector on the durable image. Mirrors
// pmem.CrashChoice, one level up the stack.
type CrashChooser func(writeIdx, sector int) bool

// DropAllWrites is the pessimistic adversary: no un-synced byte survives.
func DropAllWrites(int, int) bool { return false }

// KeepAllWrites is the optimistic adversary: the cache drained just in time.
func KeepAllWrites(int, int) bool { return true }

// SeededChooser returns a deterministic adversary that drops, keeps, or
// tears each pending write with equal probability, choosing surviving
// sectors at random for torn writes. Two calls with the same seed make
// identical choices, so every explorer case is replayable from its seed.
func SeededChooser(seed int64) CrashChooser {
	rng := rand.New(rand.NewSource(seed))
	fates := make(map[int]int)    // writeIdx → 0 drop, 1 keep, 2 torn
	torn := make(map[[2]int]bool) // (writeIdx, sector) → survives
	var mu sync.Mutex             // choosers may be consulted from tests' goroutines
	return func(writeIdx, sector int) bool {
		mu.Lock()
		defer mu.Unlock()
		f, ok := fates[writeIdx]
		if !ok {
			f = rng.Intn(3)
			fates[writeIdx] = f
		}
		switch f {
		case 0:
			return false
		case 1:
			return true
		default:
			key := [2]int{writeIdx, sector}
			v, ok := torn[key]
			if !ok {
				v = rng.Intn(2) == 0
				torn[key] = v
			}
			return v
		}
	}
}

// NewCrashDevice allocates a zeroed journaling device of the given size that
// reports the given kind, steering the engine down the matching persist path
// (per-writer fences on PMEM, a single covering sync on SSD).
func NewCrashDevice(size int64, kind Kind) *CrashDevice {
	if size < 0 {
		panic("storage: negative CrashDevice size")
	}
	return &CrashDevice{kind: kind, buf: make([]byte, size)}
}

// WriteAt implements Device: visible immediately, durable only once a later
// sync covers it.
func (d *CrashDevice) WriteAt(p []byte, off int64) error {
	if err := checkRange(int64(len(d.buf)), off, len(p)); err != nil {
		return err
	}
	cp := append([]byte(nil), p...)
	d.mu.Lock()
	copy(d.buf[off:], p)
	d.journal = append(d.journal, CrashOp{Kind: CrashOpWrite, Off: off, Data: cp})
	d.mu.Unlock()
	return nil
}

// ReadAt implements Device.
func (d *CrashDevice) ReadAt(p []byte, off int64) error {
	if err := checkRange(int64(len(d.buf)), off, len(p)); err != nil {
		return err
	}
	d.mu.Lock()
	copy(p, d.buf[off:])
	d.mu.Unlock()
	return nil
}

// Sync implements Device: a barrier making every journaled write overlapping
// [off, off+n) durable.
func (d *CrashDevice) Sync(off, n int64) error {
	if err := checkRange(int64(len(d.buf)), off, int(n)); err != nil {
		return err
	}
	d.mu.Lock()
	d.journal = append(d.journal, CrashOp{Kind: CrashOpSync, Off: off, N: n})
	d.mu.Unlock()
	return nil
}

// Persist implements Device: journaled as write + covering sync, so the
// explorer can crash between the two and tear the write.
func (d *CrashDevice) Persist(p []byte, off int64) error {
	if err := checkRange(int64(len(d.buf)), off, len(p)); err != nil {
		return err
	}
	cp := append([]byte(nil), p...)
	d.mu.Lock()
	copy(d.buf[off:], p)
	d.journal = append(d.journal,
		CrashOp{Kind: CrashOpWrite, Off: off, Data: cp},
		CrashOp{Kind: CrashOpSync, Off: off, N: int64(len(p))})
	d.mu.Unlock()
	return nil
}

// Mark appends an annotation to the journal. The explorer marks each
// acknowledged checkpoint counter so that, for any crash point, the set of
// checkpoints whose Save had returned nil before the lights went out is
// exactly the marks in the journal prefix.
func (d *CrashDevice) Mark(value uint64) {
	d.mu.Lock()
	d.journal = append(d.journal, CrashOp{Kind: CrashOpMark, Value: value})
	d.mu.Unlock()
}

// Size implements Device.
func (d *CrashDevice) Size() int64 { return int64(len(d.buf)) }

// Kind implements Device.
func (d *CrashDevice) Kind() Kind { return d.kind }

// Close implements io.Closer. Mirroring SSD.Close (sync-on-close), an
// orderly Close journals a covering sync: a backend that is closed cleanly
// leaves no volatile writes behind, so a post-Close CrashImage under the
// pessimistic adversary still carries everything written. Regression cover
// for the SSD close-without-fsync bug.
func (d *CrashDevice) Close() error {
	d.mu.Lock()
	d.journal = append(d.journal, CrashOp{Kind: CrashOpSync, Off: 0, N: int64(len(d.buf))})
	d.mu.Unlock()
	return nil
}

// Ops returns the journal length. Prefixes 0..Ops() are the crash points of
// the recorded history.
func (d *CrashDevice) Ops() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.journal)
}

// Journal returns a snapshot of the op journal.
func (d *CrashDevice) Journal() []CrashOp {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]CrashOp(nil), d.journal...)
}

// HighestMark returns the largest mark value in the journal's first prefix
// ops (0 when none) — for the explorer, the newest checkpoint acknowledged
// before the crash point.
func (d *CrashDevice) HighestMark(prefix int) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if prefix > len(d.journal) {
		prefix = len(d.journal)
	}
	var hi uint64
	for _, op := range d.journal[:prefix] {
		if op.Kind == CrashOpMark && op.Value > hi {
			hi = op.Value
		}
	}
	return hi
}

// CrashImage materializes the device contents after a power cut at the given
// op boundary: ops journal[:prefix] happened, the rest never did. Synced
// data is replayed faithfully; each write still pending at the cut is handed
// sector by sector to choose. The returned image is freshly allocated; the
// live device is not disturbed, so one recorded history serves any number of
// crash points and cache-loss schedules.
func (d *CrashDevice) CrashImage(prefix int, choose CrashChooser) ([]byte, error) {
	d.mu.Lock()
	size := int64(len(d.buf))
	if prefix < 0 || prefix > len(d.journal) {
		n := len(d.journal)
		d.mu.Unlock()
		return nil, fmt.Errorf("storage: crash point %d outside journal of %d ops", prefix, n)
	}
	ops := d.journal[:prefix]
	d.mu.Unlock()

	durable := make([]byte, size)
	// Pending write-back cache: indexes into ops of writes not yet covered
	// by a sync. A sync flushes overlapping writes in journal order.
	var pending []int
	for i, op := range ops {
		switch op.Kind {
		case CrashOpWrite:
			pending = append(pending, i)
		case CrashOpSync:
			keep := pending[:0]
			for _, wi := range pending {
				w := ops[wi]
				if w.Off < op.Off+op.N && op.Off < w.Off+int64(len(w.Data)) {
					copy(durable[w.Off:], w.Data)
				} else {
					keep = append(keep, wi)
				}
			}
			pending = keep
		}
	}
	// Power cut: the adversary decides each still-pending write's fate at
	// sector granularity, applied in journal order so surviving fragments
	// of overlapping writes layer the way reordered cache evictions would.
	for widx, wi := range pending {
		w := ops[wi]
		for s := 0; s*CrashSectorSize < len(w.Data); s++ {
			if !choose(widx, s) {
				continue
			}
			lo := s * CrashSectorSize
			hi := lo + CrashSectorSize
			if hi > len(w.Data) {
				hi = len(w.Data)
			}
			copy(durable[w.Off+int64(lo):], w.Data[lo:hi])
		}
	}
	return durable, nil
}

var _ Device = (*CrashDevice)(nil)
