package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestLedgerAttribution drives synthetic events and iteration hooks and
// checks every bucket lands where it should, and that the wall-clock
// identity (wall = iterations + drain + recovery) holds exactly for
// synthetic input.
func TestLedgerAttribution(t *testing.T) {
	l := NewLedger(LedgerConfig{Window: 4}, nil)

	ms := int64(time.Millisecond)
	l.Emit(Event{Phase: PhaseSnapshot, Dur: 5 * ms})
	l.Emit(Event{Phase: PhaseSlotWait, Dur: 3 * ms, Value: 1}) // actually waited
	l.Emit(Event{Phase: PhaseSlotWait, Dur: 2 * ms, Value: 0}) // free slot: no stall
	l.Emit(Event{Phase: PhasePersist, Dur: 7 * ms})
	l.Emit(Event{Phase: PhaseIORetry, Dur: 1 * ms})
	l.Emit(Event{Phase: PhasePublish, TS: time.Now().UnixNano(), Counter: 9})
	l.Emit(Event{Phase: PhaseObsolete})
	l.Emit(Event{Phase: PhaseSaveFailed})

	for i := 0; i < 8; i++ {
		l.IterDone(10*time.Millisecond, i == 3)
	}
	l.DrainDone(20 * time.Millisecond)
	l.AddRecovery(30 * time.Millisecond)

	rep := l.Report()
	approx := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("SnapshotStallSeconds", rep.SnapshotStallSeconds, 0.005)
	approx("SlotWaitStallSeconds", rep.SlotWaitStallSeconds, 0.003)
	approx("PersistBusySeconds", rep.PersistBusySeconds, 0.008) // persist + io-retry
	approx("DrainSeconds", rep.DrainSeconds, 0.020)
	approx("RecoverySeconds", rep.RecoverySeconds, 0.030)
	approx("WallSeconds", rep.WallSeconds, 8*0.010+0.020+0.030)
	approx("ComputeSeconds", rep.ComputeSeconds, 8*0.010-0.005)
	approx("GoodputRatio", rep.GoodputRatio, rep.ComputeSeconds/rep.WallSeconds)
	if rep.Iterations != 8 || rep.CheckpointIterations != 1 {
		t.Errorf("iterations = %d/%d ckpt, want 8/1", rep.Iterations, rep.CheckpointIterations)
	}
	if rep.Published != 1 || rep.Obsolete != 1 || rep.FailedSaves != 1 {
		t.Errorf("outcomes = %d/%d/%d, want 1/1/1", rep.Published, rep.Obsolete, rep.FailedSaves)
	}
	if rep.LastPublishedCounter != 9 {
		t.Errorf("LastPublishedCounter = %d, want 9", rep.LastPublishedCounter)
	}
	if rep.StalenessSeconds > 1 {
		t.Errorf("StalenessSeconds = %v right after a publish, want ≈0", rep.StalenessSeconds)
	}
}

// TestLedgerBreachTransitions checks the breach counter counts ≤q→>q
// transitions of the block EWMA, not per-iteration excursions, and
// resets InBreach when the slowdown recovers.
func TestLedgerBreachTransitions(t *testing.T) {
	l := NewLedger(LedgerConfig{
		SlowdownBudget:   1.5,
		BaselineIterTime: 10 * time.Millisecond,
		Window:           4,
		Smoothing:        1, // no smoothing: each block sets the EWMA directly
	}, nil)

	feed := func(d time.Duration, n int) {
		for i := 0; i < n; i++ {
			l.IterDone(d, false)
		}
	}

	feed(10*time.Millisecond, 4) // slowdown 1.0
	if rep := l.Report(); rep.BudgetBreaches != 0 || rep.InBreach {
		t.Fatalf("breach before any slow block: %+v", rep)
	}
	feed(20*time.Millisecond, 4) // slowdown 2.0 > q: breach starts
	if rep := l.Report(); rep.BudgetBreaches != 1 || !rep.InBreach {
		t.Fatalf("after slow block: breaches=%d inBreach=%v, want 1/true", rep.BudgetBreaches, rep.InBreach)
	}
	feed(20*time.Millisecond, 4) // still slow: same breach, no double count
	if rep := l.Report(); rep.BudgetBreaches != 1 {
		t.Fatalf("ongoing breach double-counted: %d", rep.BudgetBreaches)
	}
	feed(10*time.Millisecond, 4) // recovered
	if rep := l.Report(); rep.InBreach {
		t.Fatalf("InBreach stuck after recovery")
	}
	feed(20*time.Millisecond, 4) // second excursion
	if rep := l.Report(); rep.BudgetBreaches != 2 {
		t.Fatalf("second excursion: breaches=%d, want 2", rep.BudgetBreaches)
	}
}

// TestLedgerSingleSlowIterationNoBreach: one checkpoint-bearing slow
// iteration inside a window of fast ones must not breach — the point of
// block folding.
func TestLedgerSingleSlowIterationNoBreach(t *testing.T) {
	l := NewLedger(LedgerConfig{
		SlowdownBudget:   1.5,
		BaselineIterTime: 10 * time.Millisecond,
		Window:           10,
		Smoothing:        1,
	}, nil)
	for i := 0; i < 10; i++ {
		d := 10 * time.Millisecond
		if i == 5 {
			d = 40 * time.Millisecond // 4× iteration, block mean 1.3×
		}
		l.IterDone(d, i == 5)
	}
	if rep := l.Report(); rep.BudgetBreaches != 0 {
		t.Fatalf("one slow iteration breached the block budget: %+v", rep)
	}
}

// TestLedgerStragglers checks the per-rank table from synthetic agree and
// gate events, including sort order and out-of-range rank accounting.
func TestLedgerStragglers(t *testing.T) {
	l := NewLedger(LedgerConfig{}, nil)
	ms := int64(time.Millisecond)
	l.Emit(Event{Phase: PhaseAgree, Rank: 0, Dur: 2 * ms, Value: 0})
	l.Emit(Event{Phase: PhaseAgree, Rank: 1, Dur: 9 * ms, Value: 3})
	l.Emit(Event{Phase: PhaseAgree, Rank: 1, Dur: 1 * ms, Value: 1})
	l.Emit(Event{Phase: PhaseAgreeGate, Rank: 1, Dur: 8 * ms, Value: 2, Counter: 7})
	l.Emit(Event{Phase: PhaseAgreeGate, Rank: 1, Dur: 4 * ms, Value: 1, Counter: 8})
	l.Emit(Event{Phase: PhaseAgree, Rank: MaxLedgerRanks + 3, Dur: ms}) // dropped

	rep := l.Report()
	if len(rep.Stragglers) != 2 {
		t.Fatalf("straggler rows = %d, want 2 (%+v)", len(rep.Stragglers), rep.Stragglers)
	}
	top := rep.Stragglers[0]
	if top.Rank != 1 {
		t.Fatalf("worst straggler rank = %d, want 1", top.Rank)
	}
	if top.GatedRounds != 2 || math.Abs(top.GateLagSeconds-0.012) > 1e-9 || top.GateIDGapTotal != 3 {
		t.Errorf("rank 1 gate stats = %+v, want gated=2 lag=0.012 gap=3", top)
	}
	if top.Rounds != 2 || math.Abs(top.AgreeSeconds-0.010) > 1e-9 || math.Abs(top.MaxAgreeSeconds-0.009) > 1e-9 || top.PublishLagTotal != 4 {
		t.Errorf("rank 1 agree stats = %+v", top)
	}
	if rep.DroppedRankEvents != 1 {
		t.Errorf("DroppedRankEvents = %d, want 1", rep.DroppedRankEvents)
	}
}

// TestLedgerObservedTw: engine-measured Tw is the save EWMA minus the
// slot-wait EWMA (queueing is not writing).
func TestLedgerObservedTw(t *testing.T) {
	l := NewLedger(LedgerConfig{Smoothing: 1}, nil)
	if tw := l.ObservedTw(); tw != 0 {
		t.Fatalf("ObservedTw before any save = %v, want 0", tw)
	}
	l.Emit(Event{Phase: PhaseSlotWait, Dur: int64(2 * time.Millisecond), Value: 1})
	l.Emit(Event{Phase: PhaseSave, Dur: int64(10 * time.Millisecond)})
	if tw := l.ObservedTw(); tw != 8*time.Millisecond {
		t.Fatalf("ObservedTw = %v, want 8ms", tw)
	}
}

// TestLedgerForwards: the ledger is a chaining observer — every event
// reaches the inner observer untouched.
func TestLedgerForwards(t *testing.T) {
	rec := NewRecorder(64)
	l := NewLedger(LedgerConfig{}, rec)
	l.Emit(Event{Phase: PhasePublish, Counter: 3})
	l.Emit(Event{Phase: PhaseSave, Dur: int64(time.Millisecond)})
	s := rec.Snapshot()
	if s.Published != 1 {
		t.Fatalf("publish not forwarded: %+v", s)
	}
	if s.Phase(PhaseSave).Count != 1 {
		t.Fatalf("save span not forwarded")
	}
	if l.Next() != Observer(rec) {
		t.Fatalf("Next() lost the chained observer")
	}
}

// TestLedgerEmitAllocFree: Emit must stay allocation-free — the ledger
// rides the persist hot path.
func TestLedgerEmitAllocFree(t *testing.T) {
	l := NewLedger(LedgerConfig{SlowdownBudget: 1.05}, nil)
	ev := Event{Phase: PhasePersist, Dur: 1000, Slot: 1, Writer: 0, Rank: 2}
	if n := testing.AllocsPerRun(200, func() { l.Emit(ev) }); n != 0 {
		t.Fatalf("Ledger.Emit allocates %v bytes/op, want 0", n)
	}
	agree := Event{Phase: PhaseAgree, Dur: 1000, Rank: 1, Value: 2}
	if n := testing.AllocsPerRun(200, func() { l.Emit(agree) }); n != 0 {
		t.Fatalf("Ledger.Emit(agree) allocates %v bytes/op, want 0", n)
	}
}

// TestLedgerNilSafe: a nil *Ledger is inert on every method.
func TestLedgerNilSafe(t *testing.T) {
	var l *Ledger
	l.Emit(Event{Phase: PhasePublish})
	l.IterDone(time.Millisecond, true)
	l.DrainDone(time.Millisecond)
	l.AddRecovery(time.Millisecond)
	if tw := l.ObservedTw(); tw != 0 {
		t.Fatalf("nil ObservedTw = %v", tw)
	}
	if rep := l.Report(); rep.Iterations != 0 {
		t.Fatalf("nil Report = %+v", rep)
	}
}

// TestLedgerJSONRoundTrip: WriteJSON emits a decodable GoodputReport.
func TestLedgerJSONRoundTrip(t *testing.T) {
	l := NewLedger(LedgerConfig{SlowdownBudget: 1.1, PredictedTw: 50 * time.Millisecond}, nil)
	l.Emit(Event{Phase: PhaseSave, Dur: int64(60 * time.Millisecond)})
	l.Emit(Event{Phase: PhasePublish, TS: time.Now().UnixNano(), Counter: 4})
	for i := 0; i < 40; i++ {
		l.IterDone(time.Millisecond, false)
	}
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var rep GoodputReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("round trip: %v\n%s", err, buf.String())
	}
	if rep.Iterations != 40 || rep.SlowdownBudget != 1.1 || rep.LastPublishedCounter != 4 {
		t.Fatalf("decoded report lost fields: %+v", rep)
	}
	if rep.TwDriftRatio == 0 {
		t.Fatalf("TwDriftRatio unset despite prediction and observation")
	}
}

// TestLedgerWriteMetrics spot-checks the Prometheus exposition: headline
// gauges present, one stall sample per bucket, rank families labelled.
func TestLedgerWriteMetrics(t *testing.T) {
	l := NewLedger(LedgerConfig{SlowdownBudget: 1.05, BaselineIterTime: time.Millisecond, Window: 2}, nil)
	for i := 0; i < 4; i++ {
		l.IterDone(time.Millisecond, false)
	}
	l.Emit(Event{Phase: PhaseAgree, Rank: 2, Dur: int64(time.Millisecond)})
	l.Emit(Event{Phase: PhaseAgreeGate, Rank: 2, Dur: int64(time.Millisecond)})
	var buf bytes.Buffer
	l.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		"pccheck_goodput_ratio",
		"pccheck_observed_slowdown",
		"pccheck_slowdown_budget 1.05",
		"pccheck_slowdown_budget_breaches_total 0",
		"pccheck_checkpoint_staleness_seconds",
		"pccheck_iterations_total 4",
		`pccheck_stall_seconds_total{phase="snapshot"}`,
		`pccheck_stall_seconds_total{phase="recovery"}`,
		`pccheck_rank_agree_lag_seconds{rank="2"}`,
		`pccheck_rank_gated_rounds_total{rank="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}

// TestLedgerTierAccounting: tier drain/error/resync events roll up into
// per-tier report rows, the human summary, and tier-labelled metric
// families; the drain lag is the distance behind the published counter.
func TestLedgerTierAccounting(t *testing.T) {
	l := NewLedger(LedgerConfig{}, nil)
	// Backdate the events so the watermark ages are comfortably positive
	// by the time Report() runs.
	now := time.Now().Add(-time.Second).UnixNano()
	l.Emit(Event{Phase: PhasePublish, TS: now, Counter: 9})
	l.Emit(Event{Phase: PhaseTierDrain, TS: now, Dur: int64(time.Millisecond), Slot: 1, Counter: 7, Bytes: 4096})
	l.Emit(Event{Phase: PhaseTierDrain, TS: now, Dur: int64(time.Millisecond), Slot: 2, Counter: 4, Bytes: 2048})
	l.Emit(Event{Phase: PhaseTierError, TS: now, Slot: 2, Attempt: 3, Value: 1})
	l.Emit(Event{Phase: PhaseTierResync, TS: now, Slot: 2, Bytes: 8192})
	// Out-of-range tiers are dropped, not a panic or corruption.
	l.Emit(Event{Phase: PhaseTierDrain, TS: now, Slot: MaxLedgerTiers + 3, Counter: 1})

	rep := l.Report()
	if len(rep.Tiers) != 2 {
		t.Fatalf("report has %d tier rows, want 2: %+v", len(rep.Tiers), rep.Tiers)
	}
	t1, t2 := rep.Tiers[0], rep.Tiers[1]
	if t1.Tier != 1 || t1.DurableCounter != 7 || t1.DrainLagCheckpoints != 2 {
		t.Fatalf("tier 1 row = %+v, want durable 7 lag 2", t1)
	}
	if t2.Tier != 2 || t2.DurableCounter != 4 || t2.DrainLagCheckpoints != 5 ||
		t2.Errors != 1 || t2.Resyncs != 1 {
		t.Fatalf("tier 2 row = %+v, want durable 4 lag 5 errors 1 resyncs 1", t2)
	}
	if t1.StalenessSeconds < 0 || t2.StalenessSeconds <= 0 {
		t.Fatalf("staleness not computed: tier1 %.4f tier2 %.4f", t1.StalenessSeconds, t2.StalenessSeconds)
	}

	var human bytes.Buffer
	FormatReport(&human, rep)
	if !strings.Contains(human.String(), "tier 1") || !strings.Contains(human.String(), "tier 2") {
		t.Errorf("human report missing tier lines:\n%s", human.String())
	}

	var buf bytes.Buffer
	l.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		`pccheck_tier_durable_checkpoint{tier="1"} 7`,
		`pccheck_tier_durable_checkpoint{tier="2"} 4`,
		`pccheck_tier_drain_lag_checkpoints{tier="1"} 2`,
		`pccheck_tier_drain_lag_checkpoints{tier="2"} 5`,
		`pccheck_tier_staleness_seconds{tier="1"}`,
		`pccheck_tier_drains_total{tier="1"} 1`,
		`pccheck_tier_drained_bytes_total{tier="1"} 4096`,
		`pccheck_tier_drain_errors_total{tier="2"} 1`,
		`pccheck_tier_resyncs_total{tier="2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
