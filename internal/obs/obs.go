// Package obs is PCcheck's observability layer: a checkpoint flight
// recorder with per-phase latency histograms and export surfaces (Chrome
// trace-event JSON for Perfetto, Prometheus text, expvar).
//
// The paper's argument (§3.3, §5.2) is about *where time goes* inside a
// checkpoint — snapshot stall vs. chunk copy vs. parallel persist vs. the
// publish barrier — so the engine emits one structured Event per phase of
// every save: slot wait/acquire, per-chunk staging copy, per-writer persist
// span, the pointer-record barrier, retry/backoff, and the CAS publish (or
// its obsolete outcome). Events flow through the Observer interface; the
// Recorder implementation captures them into a bounded lock-free ring
// buffer and folds span durations into allocation-free histograms.
//
// The hot path is built to cost nothing when observability is off: engine
// probes are a single nil-interface check, Event is a flat value struct
// (no pointers, no heap), and Recorder.Emit performs only atomic
// operations — zero allocations per event, safe for any number of
// concurrent emitters.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies which part of the checkpoint lifecycle an Event
// describes. Span phases carry a duration; instant phases mark a point in
// time. docs/OBSERVABILITY.md maps each phase to the paper section it
// instruments.
type Phase uint8

const (
	// PhaseSave spans one Save end to end: counter taken → durably
	// published (or durably superseded).
	PhaseSave Phase = iota
	// PhaseSlotWait spans the free-slot acquisition (Listing 1's deq
	// loop). Emitted for every save; Value is 1 when the save actually
	// had to wait, 0 when a slot was immediately available.
	PhaseSlotWait
	// PhaseCopy spans one chunk's staging copy, source → DRAM chunk (the
	// paper's GPU→DRAM step ③). Bytes is the chunk length, Value the
	// payload offset.
	PhaseCopy
	// PhaseChunkWait spans the producer's wait for a free DRAM chunk —
	// the "checkpoint waits for free chunks" condition of §3.2.
	PhaseChunkWait
	// PhasePersist spans one writer goroutine persisting one chunk to the
	// device. Writer is the writer index, Bytes the chunk length, Value
	// the payload offset.
	PhasePersist
	// PhaseSync spans the single whole-payload sync on the SSD path
	// (§4.1: "the main thread can call a single msync").
	PhaseSync
	// PhaseHeader spans the slot-header persist that precedes publication.
	PhaseHeader
	// PhaseBarrier spans the pointer-record persist — BARRIER(CHECK_ADDR)
	// of Listing 1.
	PhaseBarrier
	// PhasePublish marks a checkpoint winning the CAS and becoming the
	// latest durable state (instant).
	PhasePublish
	// PhaseObsolete marks a checkpoint completed but superseded by a newer
	// concurrent checkpoint before publishing (instant).
	PhaseObsolete
	// PhaseCASRetry marks a publish CAS retried against an older
	// registered value (instant).
	PhaseCASRetry
	// PhaseIORetry marks a persist-path I/O retry after a transient
	// device fault; Dur is the backoff slept before the retry, Attempt
	// the 1-based attempt that failed.
	PhaseIORetry
	// PhaseFault marks a transient device fault observed on the persist
	// path (instant), whether or not the retry budget absorbed it.
	PhaseFault
	// PhaseFaultInjected marks a fault fired by a storage.FaultDevice
	// (instant); Value is the storage.Op code.
	PhaseFaultInjected
	// PhaseSnapshot spans the workload-side state capture in
	// Loop/AdaptiveLoop — the only part of a tick that stalls training.
	PhaseSnapshot
	// PhaseRetune marks an AdaptiveLoop interval re-derivation (instant);
	// Value is the new interval.
	PhaseRetune
	// PhaseAgree spans a distributed coordination round: local publish →
	// group agreement (the per-rank publish lag). Rank is the worker
	// rank, Counter the agreed ID, Value the locally reported ID.
	PhaseAgree
	// PhaseSaveFailed marks a Save that returned an error after starting
	// (instant) — the rollback-window widening an operator alerts on.
	PhaseSaveFailed
	// PhaseAgreeGate is rank 0's per-round straggler record: emitted once
	// per completed coordination round, Rank is the rank that gated the
	// round (oldest reported ID, or last report to arrive on a tie), Dur
	// the spread between the first and last report arrival, Value the ID
	// gap between the freshest and oldest report, Counter the agreed ID.
	PhaseAgreeGate
	// PhaseRankDead marks rank 0 declaring a worker dead (instant): no
	// heartbeat, conn loss, or a commit-deadline expiry. Rank is the dead
	// worker, Value the detection cause (see dist.DeadCause*).
	PhaseRankDead
	// PhaseRankRejoined marks a previously dead worker re-attaching to the
	// group (instant); Rank is the worker, Counter the consistent ID it
	// was resynced to.
	PhaseRankRejoined
	// PhaseFrameDropped marks a coordination frame discarded by protocol
	// validation — out-of-range rank, stale or duplicated round, unknown
	// kind (instant). Rank is the claimed sender, Value the reason code.
	PhaseFrameDropped
	// PhaseDeltaEncode spans the diff + delta-record encode of a save that
	// was stored as a delta. Bytes is the encoded record length, Value the
	// logical payload size — their ratio is this save's delta ratio.
	PhaseDeltaEncode
	// PhaseKeyframe marks a delta-mode save published as a full keyframe
	// (instant); Bytes is the payload size. Plain-mode saves never emit it.
	PhaseKeyframe
	// PhaseDecision marks a recorded policy decision (instant): Counter is
	// the decision sequence number and Value its kind, both resolving into
	// the decision recorder's structured log (internal/obs/decision).
	PhaseDecision
	// PhaseTierDrain spans one tier-drain cycle of a storage.Tiered device:
	// the async drainer replaying tier 0's journaled ops into a lower tier
	// and syncing it. Slot is the tier index, Counter the checkpoint counter
	// now durable at that tier, Bytes the bytes copied this cycle.
	PhaseTierDrain
	// PhaseTierError marks a drain cycle aborted by a tier fault (instant):
	// Slot is the tier index, Attempt the 1-based attempt that exhausted the
	// retry budget, Value the storage error class.
	PhaseTierError
	// PhaseTierResync marks a full-image tier resync (instant): the bounded
	// drain journal overflowed past a lagging tier, so the drainer recopied
	// the whole tier-0 image. Slot is the tier index, Bytes the image size.
	PhaseTierResync
	// PhaseCrashMark marks the crash boundary in a merged forensic timeline
	// (instant): pccheck-trace emits one between the last pre-crash black-box
	// event and the first post-recovery event. The engine never emits it.
	PhaseCrashMark
	// PhaseScrub spans one integrity-scrub sweep over the committed state:
	// slot headers, payload/delta CRCs, pointer records, the black-box
	// region, and per-tier copies. Bytes is the volume verified, Value the
	// number of corruptions found this sweep.
	PhaseScrub
	// PhaseScrubCorrupt marks one corruption found by the scrubber
	// (instant): Slot is the damaged slot (-1 for a record or the black-box
	// region), Counter the checkpoint involved when known, Value the tier
	// index holding the bad copy (-1 for tier 0 / single-device).
	PhaseScrubCorrupt
	// PhaseScrubRepair spans one repair: the corrupt copy rewritten from the
	// newest healthy source. Slot/Counter/Value mirror the PhaseScrubCorrupt
	// that triggered it; Bytes is the volume rewritten.
	PhaseScrubRepair
	// PhaseQuarantine marks a slot tombstoned because no healthy source
	// could repair it (instant): recovery skips it from now on. Slot is the
	// quarantined slot, Counter its header counter.
	PhaseQuarantine
	// PhaseTierFailover spans a write-path failover on a storage.Tiered
	// device: tier Value exhausted its retry budget with permanent errors,
	// so persists re-routed to tier Slot after a journal catch-up taking
	// Dur. Bytes is the catch-up volume.
	PhaseTierFailover

	// PhaseCount is the number of defined phases.
	PhaseCount
)

var phaseNames = [PhaseCount]string{
	"save", "slot-wait", "copy", "chunk-wait", "persist", "sync",
	"header", "barrier", "publish", "obsolete", "cas-retry", "io-retry",
	"fault", "fault-injected", "snapshot", "retune", "agree",
	"save-failed", "agree-gate", "rank-dead", "rank-rejoined",
	"frame-dropped", "delta-encode", "keyframe", "decision",
	"tier-drain", "tier-error", "tier-resync", "crash-mark",
	"scrub", "scrub-corrupt", "scrub-repair", "quarantine",
	"tier-failover",
}

// String returns the phase's canonical hyphenated name.
func (p Phase) String() string {
	if p < PhaseCount {
		return phaseNames[p]
	}
	return "phase?"
}

// IsSpan reports whether events of this phase carry a meaningful duration.
func (p Phase) IsSpan() bool {
	switch p {
	case PhaseSave, PhaseSlotWait, PhaseCopy, PhaseChunkWait, PhasePersist,
		PhaseSync, PhaseHeader, PhaseBarrier, PhaseSnapshot, PhaseAgree,
		PhaseIORetry, PhaseAgreeGate, PhaseDeltaEncode, PhaseTierDrain,
		PhaseScrub, PhaseScrubRepair, PhaseTierFailover:
		return true
	}
	return false
}

// Event is one checkpoint lifecycle record. It is a flat value struct —
// no pointers — so emitting one never allocates and storing one into the
// ring is a plain copy. Field meaning varies slightly by Phase (see the
// Phase constants); unused fields are zero.
type Event struct {
	// TS is the event (or span start) time, nanoseconds since the Unix
	// epoch.
	TS int64
	// Dur is the span duration in nanoseconds; 0 for instants.
	Dur int64
	// Counter is the checkpoint's global order, when known.
	Counter uint64
	// Bytes is the payload volume the event covers, when applicable.
	Bytes int64
	// Value is a phase-specific argument (offset, interval, op code…).
	Value int64
	// Phase identifies the lifecycle phase.
	Phase Phase
	// Slot is the checkpoint slot involved (-1 when unknown).
	Slot int32
	// Writer is the writer-goroutine index for PhasePersist (-1 otherwise).
	Writer int32
	// Rank is the distributed worker rank (-1 for local events).
	Rank int32
	// Attempt is the 1-based I/O attempt for retry/fault events.
	Attempt int32
}

// Observer receives checkpoint lifecycle events. Implementations must be
// safe for concurrent use and should not block: Emit is called from the
// engine's hot path (writer goroutines, the publish CAS loop). Recorder is
// the packaged implementation; custom observers can forward to tracing
// systems of their own.
type Observer interface {
	Emit(Event)
}

// Recorder is the packaged Observer: a bounded lock-free flight recorder
// plus per-phase latency histograms and cumulative counters. All methods
// are safe for concurrent use. The zero Recorder is not usable; call
// NewRecorder.
type Recorder struct {
	ring  *ring
	hists [PhaseCount]Histogram

	published   atomic.Uint64
	obsolete    atomic.Uint64
	failedSaves atomic.Uint64
	casRetry    atomic.Uint64
	ioRetry     atomic.Uint64
	faults      atomic.Uint64
	injected    atomic.Uint64
	slotWaits   atomic.Uint64
	rankDeaths  atomic.Uint64
	rankRejoins atomic.Uint64
	badFrames   atomic.Uint64
	// bytes counts logical checkpoint bytes published; bytesPersisted what
	// actually hit the device (smaller when saves are delta-encoded).
	bytes          atomic.Int64
	bytesPersisted atomic.Int64
	deltaSaves     atomic.Uint64
	keyframes      atomic.Uint64

	scrubSweeps   atomic.Uint64
	scrubBytes    atomic.Int64
	scrubCorrupt  atomic.Uint64
	repairs       atomic.Uint64
	quarantines   atomic.Uint64
	tierFailovers atomic.Uint64
}

// DefaultCapacity is the ring capacity used when NewRecorder is given 0.
const DefaultCapacity = 1 << 14

// NewRecorder builds a Recorder whose ring retains the most recent
// capacity events (rounded up to a power of two; 0 selects
// DefaultCapacity). When the ring is full the oldest events are dropped
// and counted, flight-recorder style.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{ring: newRing(capacity)}
}

// Emit implements Observer: the event lands in the ring, span durations
// fold into the phase's histogram, and the phase's counter advances.
// Emit performs no allocations and takes no locks. A nil *Recorder
// discards the event, so a typed-nil Recorder stored in an Observer
// interface is inert rather than a panic.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.ring.put(ev)
	if ev.Phase < PhaseCount && ev.Phase.IsSpan() {
		r.hists[ev.Phase].Observe(ev.Dur)
	}
	switch ev.Phase {
	case PhasePublish:
		r.published.Add(1)
		// Bytes is what was persisted; Value, when set, is the logical
		// payload size (they differ exactly when the save was a delta).
		logical := ev.Value
		if logical <= 0 {
			logical = ev.Bytes
		}
		r.bytes.Add(logical)
		r.bytesPersisted.Add(ev.Bytes)
		if ev.Value > 0 && ev.Bytes != ev.Value {
			r.deltaSaves.Add(1)
		}
	case PhaseKeyframe:
		r.keyframes.Add(1)
	case PhaseObsolete:
		r.obsolete.Add(1)
	case PhaseSaveFailed:
		r.failedSaves.Add(1)
	case PhaseCASRetry:
		r.casRetry.Add(1)
	case PhaseIORetry:
		r.ioRetry.Add(1)
	case PhaseFault:
		r.faults.Add(1)
	case PhaseFaultInjected:
		r.injected.Add(1)
	case PhaseRankDead:
		r.rankDeaths.Add(1)
	case PhaseRankRejoined:
		r.rankRejoins.Add(1)
	case PhaseFrameDropped:
		r.badFrames.Add(1)
	case PhaseScrub:
		r.scrubSweeps.Add(1)
		r.scrubBytes.Add(ev.Bytes)
	case PhaseScrubCorrupt:
		r.scrubCorrupt.Add(1)
	case PhaseScrubRepair:
		r.repairs.Add(1)
	case PhaseQuarantine:
		r.quarantines.Add(1)
	case PhaseTierFailover:
		r.tierFailovers.Add(1)
	case PhaseSlotWait:
		if ev.Value != 0 {
			r.slotWaits.Add(1)
		}
	}
}

// TakeEvents drains and returns the buffered events, oldest first. The
// ring is emptied: a subsequent TakeEvents returns only events emitted
// after this call. WriteTrace uses it internally.
func (r *Recorder) TakeEvents() []Event {
	return r.ring.drain()
}

// SnapshotEvents copies and returns the buffered events, oldest first,
// without consuming them: the ring is left untouched, so any number of
// concurrent consumers (trace export, the dashboard, the black-box
// flusher) observe the same events instead of stealing them from each
// other. The copy is weakly consistent under concurrent emitters. A nil
// *Recorder returns nil.
func (r *Recorder) SnapshotEvents() []Event {
	if r == nil {
		return nil
	}
	return r.ring.snapshot()
}

// Dropped reports how many events were discarded because the ring was
// full (the flight recorder keeps the most recent ones).
func (r *Recorder) Dropped() uint64 { return r.ring.dropped.Load() }

// FindRecorder walks an observer chain — any sequence of observers linked
// by a Next() Observer method, e.g. Ledger → decision.Recorder → Recorder
// — and returns the first *Recorder, or nil if the chain has none.
func FindRecorder(o Observer) *Recorder {
	for o != nil {
		if r, ok := o.(*Recorder); ok {
			return r
		}
		n, ok := o.(interface{ Next() Observer })
		if !ok {
			return nil
		}
		o = n.Next()
	}
	return nil
}

// FindLedger walks an observer chain (see FindRecorder) and returns the
// first *Ledger, or nil if the chain has none.
func FindLedger(o Observer) *Ledger {
	for o != nil {
		if l, ok := o.(*Ledger); ok {
			return l
		}
		n, ok := o.(interface{ Next() Observer })
		if !ok {
			return nil
		}
		o = n.Next()
	}
	return nil
}

// PhaseStats summarises one phase's latency distribution.
type PhaseStats struct {
	// Count is how many spans were observed.
	Count uint64
	// Total is the cumulative span time.
	Total time.Duration
	// P50, P95, P99 are upper-bound percentile estimates (≈3% relative
	// error from the histogram's bucket geometry).
	P50, P95, P99 time.Duration
	// Max is the largest span observed.
	Max time.Duration
}

// Snapshot is a point-in-time copy of the recorder's histograms and
// counters — the payload behind the metrics endpoint and expvar.
type Snapshot struct {
	// Published / Obsolete / FailedSaves / CASRetries / IORetries mirror
	// the engine's cumulative outcome counters, as seen through emitted
	// events. Saves is the derived total of initiated saves that reached
	// an outcome: Published + Obsolete + FailedSaves.
	Published   uint64
	Obsolete    uint64
	FailedSaves uint64
	Saves       uint64
	CASRetries  uint64
	IORetries   uint64
	// TransientFaults counts observed persist-path faults;
	// InjectedFaults counts faults fired by a storage.FaultDevice.
	TransientFaults uint64
	InjectedFaults  uint64
	// SlotWaits counts saves that had to wait for a free slot.
	SlotWaits uint64
	// RankDeaths / RankRejoins count distributed failure-detector
	// transitions seen by rank 0's coordinator; DroppedFrames counts
	// coordination frames discarded by protocol validation.
	RankDeaths    uint64
	RankRejoins   uint64
	DroppedFrames uint64
	// BytesWritten is the published payload volume (logical bytes);
	// BytesPersisted is what actually reached the device. DeltaSaves and
	// KeyframeSaves break published saves down in delta mode (keyframes
	// only count there; plain-mode publishes increment neither).
	BytesWritten   int64
	BytesPersisted int64
	DeltaSaves     uint64
	KeyframeSaves  uint64
	// ScrubSweeps counts completed integrity-scrub sweeps, ScrubBytes the
	// cumulative volume verified; ScrubCorruptions counts corruptions found,
	// Repairs successful rewrites from a healthy source, Quarantines slots
	// tombstoned with no healthy source, and TierFailovers write-path
	// re-routes away from a permanently failing tier.
	ScrubSweeps      uint64
	ScrubBytes       int64
	ScrubCorruptions uint64
	Repairs          uint64
	Quarantines      uint64
	TierFailovers    uint64
	// DroppedEvents counts ring overwrites (oldest-event drops).
	DroppedEvents uint64
	// RingOccupancy is how many events are currently buffered in the
	// flight-recorder ring (approximate under concurrency) — drop
	// pressure is visible here before DroppedEvents starts climbing.
	RingOccupancy int
	// RingCapacity is the ring's fixed capacity.
	RingCapacity int
	// Phases holds one latency summary per Phase (index with the Phase
	// constants, or use the Phase accessor).
	Phases [PhaseCount]PhaseStats
}

// Phase returns the latency summary for p.
func (s Snapshot) Phase(p Phase) PhaseStats {
	if p < PhaseCount {
		return s.Phases[p]
	}
	return PhaseStats{}
}

// Snapshot summarises the recorder without disturbing the event ring.
// Concurrent emitters keep running; the snapshot is weakly consistent.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Published:        r.published.Load(),
		Obsolete:         r.obsolete.Load(),
		FailedSaves:      r.failedSaves.Load(),
		CASRetries:       r.casRetry.Load(),
		IORetries:        r.ioRetry.Load(),
		TransientFaults:  r.faults.Load(),
		InjectedFaults:   r.injected.Load(),
		SlotWaits:        r.slotWaits.Load(),
		RankDeaths:       r.rankDeaths.Load(),
		RankRejoins:      r.rankRejoins.Load(),
		DroppedFrames:    r.badFrames.Load(),
		BytesWritten:     r.bytes.Load(),
		BytesPersisted:   r.bytesPersisted.Load(),
		DeltaSaves:       r.deltaSaves.Load(),
		KeyframeSaves:    r.keyframes.Load(),
		ScrubSweeps:      r.scrubSweeps.Load(),
		ScrubBytes:       r.scrubBytes.Load(),
		ScrubCorruptions: r.scrubCorrupt.Load(),
		Repairs:          r.repairs.Load(),
		Quarantines:      r.quarantines.Load(),
		TierFailovers:    r.tierFailovers.Load(),
		DroppedEvents:    r.ring.dropped.Load(),
		RingOccupancy:    r.ring.len(),
		RingCapacity:     len(r.ring.cells),
	}
	s.Saves = s.Published + s.Obsolete + s.FailedSaves
	for p := Phase(0); p < PhaseCount; p++ {
		h := &r.hists[p]
		s.Phases[p] = PhaseStats{
			Count: h.Count(),
			Total: time.Duration(h.Sum()),
			P50:   time.Duration(h.Percentile(0.50)),
			P95:   time.Duration(h.Percentile(0.95)),
			P99:   time.Duration(h.Percentile(0.99)),
			Max:   time.Duration(h.Max()),
		}
	}
	return s
}
