package blackbox

import (
	"encoding/json"
	"testing"

	"pccheck/internal/obs"
	"pccheck/internal/storage"
)

// FuzzBlackBoxDecode feeds arbitrary bytes to the region decoder. The
// contract under fuzz: never panic, and every frame that survives
// decoding is internally valid — positive strictly-increasing sequence
// numbers and a payload whose sections parsed cleanly. A corrupted
// region may decode to nothing (that is the torn-write story), but it
// must never decode to garbage.
func FuzzBlackBoxDecode(f *testing.F) {
	// Seed 1: a valid region with a few frames, so the fuzzer starts from
	// coverage of the happy path and mutates toward near-valid corruption.
	l := Layout{FrameBytes: 1024, Slots: 3}
	dev := storage.NewRAM(l.RegionBytes())
	if err := Format(dev, 0, 9, l); err != nil {
		f.Fatal(err)
	}
	j, err := OpenJournal(dev, 0, l.RegionBytes(), 9)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		_, err := j.Append(Frame{
			TS:     int64(1000 + i),
			Events: []obs.Event{{TS: int64(i), Phase: obs.PhasePublish, Counter: uint64(i + 1), Slot: -1, Writer: -1, Rank: -1}},
			Report: json.RawMessage(`{"published":1}`),
		})
		if err != nil {
			f.Fatal(err)
		}
	}
	valid := make([]byte, l.RegionBytes())
	if err := dev.ReadAt(valid, 0); err != nil {
		f.Fatal(err)
	}
	f.Add(valid, uint64(9))
	f.Add(make([]byte, SectorBytes), uint64(0))
	f.Add([]byte{}, uint64(1))

	f.Fuzz(func(t *testing.T, raw []byte, epoch uint64) {
		// Size the region to whatever the input claims by padding to a
		// sector multiple; Decode must cope with any geometry the header
		// asserts versus what the device actually holds.
		size := int64(len(raw))
		if rem := size % SectorBytes; rem != 0 {
			size += SectorBytes - rem
		}
		if size < SectorBytes {
			size = SectorBytes
		}
		buf := make([]byte, size)
		copy(buf, raw)
		pm, err := Decode(storage.NewRAMFromBytes(buf), 0, size, epoch)
		if err != nil {
			return // rejection is always a legal outcome
		}
		var prev uint64
		for _, fr := range pm.Frames {
			if fr.Seq == 0 {
				t.Fatalf("decoded frame with zero sequence: %+v", fr)
			}
			if fr.Seq <= prev {
				t.Fatalf("non-monotonic frames: %d after %d", fr.Seq, prev)
			}
			prev = fr.Seq
			for _, ev := range fr.Events {
				if ev.Phase >= obs.PhaseCount {
					t.Fatalf("frame %d decoded out-of-range phase %d", fr.Seq, ev.Phase)
				}
			}
		}
		// The accessors must tolerate whatever survived.
		pm.LastSeq()
		pm.Events()
		pm.LastReport()
		pm.LastDecisions()
	})
}

// FuzzFrameDecode hits the single-frame codec directly with arbitrary
// slot bytes — the tightest loop of the torn-write story.
func FuzzFrameDecode(f *testing.F) {
	l := Layout{FrameBytes: 1024, Slots: 2}
	buf := make([]byte, l.FrameBytes)
	fr := Frame{Seq: 1, TS: 5, Events: []obs.Event{{Phase: obs.PhaseSync, Slot: -1, Writer: -1, Rank: -1}}}
	encodeFrame(buf, 4, fr)
	f.Add(buf, uint64(4))
	f.Add(make([]byte, frameHeaderLen), uint64(0))

	f.Fuzz(func(t *testing.T, raw []byte, epoch uint64) {
		got, ok := decodeFrame(raw, epoch)
		if !ok {
			return
		}
		if got.Seq == 0 {
			t.Fatal("decodeFrame accepted a zero sequence")
		}
	})
}
