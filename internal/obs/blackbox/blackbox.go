// Package blackbox implements PCcheck's crash-surviving telemetry
// journal: a torn-write-tolerant, CRC-framed ring of telemetry frames
// stored in a reserved region of the checkpoint device, after the slot
// area. Every observability surface the process holds in DRAM — the
// flight-recorder ring, the goodput ledger's report, the decision-trace
// tail — dies with the process, which is exactly the scenario the engine
// exists to survive; the black box periodically persists a snapshot of
// all three so a post-crash inspector can explain what the process was
// doing when the power went out.
//
// Region layout (sizes fixed at format time, recorded in the header):
//
//	[ header sector: 512 B, CRC-framed, epoch-stamped ]
//	[ frame slot 0: FrameBytes ]
//	[ frame slot 1: FrameBytes ]
//	...
//	[ frame slot F-1 ]
//
// Frames carry a monotonic sequence number; frame seq s lives in slot
// s % F, so the region always retains the most recent F frames. Every
// frame is CRC-framed (header and payload separately) and epoch-stamped
// with the device's format epoch: a torn frame fails its CRC and is
// skipped, a frame surviving from before a reformat fails the epoch
// check and is rejected — stale telemetry can never be resurrected as
// current, mirroring the slot-header epoch rule.
package blackbox

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"pccheck/internal/obs"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

const (
	// SectorBytes aligns the region header and frame slots: frame slots
	// are a multiple of it so a frame write never shares a sector with a
	// neighbour, bounding torn-write blast radius to the frame itself.
	SectorBytes = 512

	regionMagic = 0x58424350 // "PCBX" little-endian
	frameMagic  = 0x46424350 // "PCBF" little-endian
	version     = 1

	headerLen      = 64 // bytes of the region header actually used
	frameHeaderLen = 64

	// eventLen is the fixed on-device encoding of one obs.Event.
	eventLen = 60

	// maxFrameSlots bounds decode-side loops against hostile headers.
	maxFrameSlots = 1 << 20
)

// Payload section types.
const (
	secEvents    = 1 // fixed-width binary obs.Event tail
	secReport    = 2 // obs.GoodputReport JSON
	secDecisions = 3 // []decision.Decision JSON
)

// ErrNoRegion reports that the device was formatted without a black-box
// region (pre-forensics layout, or BlackBox disabled at format time).
var ErrNoRegion = errors.New("blackbox: device has no black box region")

// Layout describes the region geometry: header sector plus Slots frame
// slots of FrameBytes each.
type Layout struct {
	FrameBytes int64
	Slots      int
}

// RegionBytes is the total on-device size of the region.
func (l Layout) RegionBytes() int64 {
	return SectorBytes + int64(l.Slots)*l.FrameBytes
}

// LayoutFor derives the region geometry from a size budget. frameBytes
// is rounded up to a whole number of sectors (0 selects 8 KiB); the slot
// count is whatever fits the budget, minimum 2 so the newest complete
// frame always survives a torn successor.
func LayoutFor(budgetBytes, frameBytes int64) Layout {
	if frameBytes <= 0 {
		frameBytes = 8 << 10
	}
	if rem := frameBytes % SectorBytes; rem != 0 {
		frameBytes += SectorBytes - rem
	}
	slots := (budgetBytes - SectorBytes) / frameBytes
	if slots < 2 {
		slots = 2
	}
	if slots > maxFrameSlots {
		slots = maxFrameSlots
	}
	return Layout{FrameBytes: frameBytes, Slots: int(slots)}
}

// Format persists the region header at off with the given format epoch.
// Frame slots are not zeroed: stale frames from a previous format are
// fenced off by the epoch check, exactly like recycled checkpoint slots.
func Format(dev storage.Device, off int64, epoch uint64, l Layout) error {
	if l.Slots < 1 || l.FrameBytes < frameHeaderLen || l.FrameBytes%SectorBytes != 0 {
		return fmt.Errorf("blackbox: invalid layout %+v", l)
	}
	buf := make([]byte, SectorBytes)
	binary.LittleEndian.PutUint32(buf[0:], regionMagic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint64(buf[16:], uint64(l.RegionBytes()))
	binary.LittleEndian.PutUint64(buf[24:], uint64(l.FrameBytes))
	binary.LittleEndian.PutUint32(buf[32:], uint32(l.Slots))
	binary.LittleEndian.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
	return dev.Persist(buf, off)
}

// decodeHeader validates a region header sector and returns its geometry.
func decodeHeader(buf []byte, regionBytes int64) (Layout, uint64, error) {
	if len(buf) < headerLen {
		return Layout{}, 0, errors.New("blackbox: region header truncated")
	}
	if binary.LittleEndian.Uint32(buf[60:]) != crc32.ChecksumIEEE(buf[:60]) {
		return Layout{}, 0, errors.New("blackbox: region header CRC mismatch")
	}
	if binary.LittleEndian.Uint32(buf[0:]) != regionMagic {
		return Layout{}, 0, errors.New("blackbox: bad region magic")
	}
	if v := binary.LittleEndian.Uint32(buf[4:]); v != version {
		return Layout{}, 0, fmt.Errorf("blackbox: unsupported region version %d", v)
	}
	epoch := binary.LittleEndian.Uint64(buf[8:])
	total := int64(binary.LittleEndian.Uint64(buf[16:]))
	frameBytes := int64(binary.LittleEndian.Uint64(buf[24:]))
	slots := int64(binary.LittleEndian.Uint32(buf[32:]))
	l := Layout{FrameBytes: frameBytes, Slots: int(slots)}
	switch {
	case slots < 1 || slots > maxFrameSlots:
		return Layout{}, 0, fmt.Errorf("blackbox: implausible slot count %d", slots)
	case frameBytes < frameHeaderLen || frameBytes%SectorBytes != 0:
		return Layout{}, 0, fmt.Errorf("blackbox: implausible frame size %d", frameBytes)
	case l.RegionBytes() != total:
		return Layout{}, 0, fmt.Errorf("blackbox: header geometry %d does not cover declared region %d", l.RegionBytes(), total)
	case regionBytes > 0 && total != regionBytes:
		return Layout{}, 0, fmt.Errorf("blackbox: region header declares %d bytes, superblock reserves %d", total, regionBytes)
	}
	return l, epoch, nil
}

// CheckHeader validates the region header sector at off: CRC, magic,
// geometry against the reserved regionBytes, and the format epoch. It is
// the scrubber's cheap liveness probe for the telemetry region — frames are
// not touched (a live flusher may be appending to them concurrently).
func CheckHeader(dev storage.Device, off, regionBytes int64, epoch uint64) error {
	buf := make([]byte, SectorBytes)
	if err := dev.ReadAt(buf, off); err != nil {
		return err
	}
	_, got, err := decodeHeader(buf, regionBytes)
	if err != nil {
		return err
	}
	if got != epoch {
		return fmt.Errorf("blackbox: region header carries epoch %d, device is epoch %d", got, epoch)
	}
	return nil
}

// RewriteHeader re-persists the region header sector from the journal's
// in-memory layout and epoch — the repair for a damaged header. Frame slots
// and the append position are untouched.
func (j *Journal) RewriteHeader() error {
	return Format(j.dev, j.off, j.epoch, j.layout)
}

// RepairHeader rewrites the region header through the flusher's journal,
// serialized against concurrent flushes.
func (f *Flusher) RepairHeader() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.j.RewriteHeader()
}

// Frame is one decoded telemetry frame: a point-in-time snapshot of the
// flight ring tail, the goodput report, and the decision-trace tail.
type Frame struct {
	// Seq is the frame's monotonic sequence number (1-based).
	Seq uint64
	// TS is the flush wall-clock time, nanoseconds since the Unix epoch.
	TS int64
	// Events is the flight-ring tail captured by this flush, oldest
	// first. Consecutive frames overlap: snapshots are non-destructive.
	Events []obs.Event
	// Report is the goodput ledger's report at flush time as JSON, nil
	// when no ledger was attached.
	Report json.RawMessage
	// Decisions is the decision-trace tail at flush time as a JSON
	// array, nil when no decision recorder was attached.
	Decisions json.RawMessage
}

// encodeEvents renders events in the fixed 60-byte wire form.
func encodeEvents(events []obs.Event) []byte {
	buf := make([]byte, len(events)*eventLen)
	for i, ev := range events {
		b := buf[i*eventLen:]
		binary.LittleEndian.PutUint64(b[0:], uint64(ev.TS))
		binary.LittleEndian.PutUint64(b[8:], uint64(ev.Dur))
		binary.LittleEndian.PutUint64(b[16:], ev.Counter)
		binary.LittleEndian.PutUint64(b[24:], uint64(ev.Bytes))
		binary.LittleEndian.PutUint64(b[32:], uint64(ev.Value))
		binary.LittleEndian.PutUint32(b[40:], uint32(ev.Phase))
		binary.LittleEndian.PutUint32(b[44:], uint32(ev.Slot))
		binary.LittleEndian.PutUint32(b[48:], uint32(ev.Writer))
		binary.LittleEndian.PutUint32(b[52:], uint32(ev.Rank))
		binary.LittleEndian.PutUint32(b[56:], uint32(ev.Attempt))
	}
	return buf
}

// decodeEvents parses fixed-width event records. ok is false when any
// record carries an out-of-range phase — a CRC collision or a frame
// from a newer writer; either way the frame is not trustworthy.
func decodeEvents(buf []byte) ([]obs.Event, bool) {
	n := len(buf) / eventLen
	events := make([]obs.Event, n)
	for i := range events {
		b := buf[i*eventLen:]
		events[i] = obs.Event{
			TS:      int64(binary.LittleEndian.Uint64(b[0:])),
			Dur:     int64(binary.LittleEndian.Uint64(b[8:])),
			Counter: binary.LittleEndian.Uint64(b[16:]),
			Bytes:   int64(binary.LittleEndian.Uint64(b[24:])),
			Value:   int64(binary.LittleEndian.Uint64(b[32:])),
			Phase:   obs.Phase(binary.LittleEndian.Uint32(b[40:])),
			Slot:    int32(binary.LittleEndian.Uint32(b[44:])),
			Writer:  int32(binary.LittleEndian.Uint32(b[48:])),
			Rank:    int32(binary.LittleEndian.Uint32(b[52:])),
			Attempt: int32(binary.LittleEndian.Uint32(b[56:])),
		}
		if events[i].Phase >= obs.PhaseCount {
			return nil, false
		}
	}
	return events, true
}

// encodeFrame renders a frame into a full slot-sized buffer. Sections
// that do not fit the slot are trimmed in priority order: oldest events
// first, then decisions, then the report — an empty payload always fits.
func encodeFrame(buf []byte, epoch uint64, f Frame) {
	for i := range buf {
		buf[i] = 0
	}
	budget := len(buf) - frameHeaderLen
	section := func(typ uint32, data []byte) []byte {
		if len(data) == 0 || 8+len(data) > budget {
			return nil
		}
		s := make([]byte, 8+len(data))
		binary.LittleEndian.PutUint32(s[0:], typ)
		binary.LittleEndian.PutUint32(s[4:], uint32(len(data)))
		copy(s[8:], data)
		return s
	}
	// Reserve space for report and decisions, then fill the rest with the
	// newest events that fit.
	reserved := 0
	if len(f.Report) > 0 {
		reserved += 8 + len(f.Report)
	}
	if len(f.Decisions) > 0 {
		reserved += 8 + len(f.Decisions)
	}
	events := f.Events
	if reserved > budget {
		// Report/decisions alone overflow: drop decisions, then report.
		f.Decisions = nil
		reserved = 0
		if len(f.Report) > 0 {
			reserved = 8 + len(f.Report)
		}
		if reserved > budget {
			f.Report = nil
			reserved = 0
		}
	}
	if maxEv := (budget - reserved - 8) / eventLen; maxEv < len(events) {
		if maxEv < 0 {
			maxEv = 0
		}
		events = events[len(events)-maxEv:] // keep the newest tail
	}
	payload := buf[frameHeaderLen:frameHeaderLen]
	payload = append(payload, section(secEvents, encodeEvents(events))...)
	payload = append(payload, section(secReport, f.Report)...)
	payload = append(payload, section(secDecisions, f.Decisions)...)

	binary.LittleEndian.PutUint32(buf[0:], frameMagic)
	binary.LittleEndian.PutUint32(buf[4:], version)
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint64(buf[16:], f.Seq)
	binary.LittleEndian.PutUint64(buf[24:], uint64(f.TS))
	binary.LittleEndian.PutUint32(buf[32:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[36:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
}

// decodeFrame validates one slot's bytes against the region epoch and
// returns the frame it holds. ok is false for empty, torn, or
// stale-epoch slots — all expected states, not errors. The decoder is
// fully bounds-checked: arbitrary bytes never panic.
func decodeFrame(buf []byte, epoch uint64) (Frame, bool) {
	if len(buf) < frameHeaderLen {
		return Frame{}, false
	}
	if binary.LittleEndian.Uint32(buf[60:]) != crc32.ChecksumIEEE(buf[:60]) {
		return Frame{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:]) != frameMagic ||
		binary.LittleEndian.Uint32(buf[4:]) != version {
		return Frame{}, false
	}
	if binary.LittleEndian.Uint64(buf[8:]) != epoch {
		return Frame{}, false // pre-reformat frame: fenced off
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[32:]))
	if payloadLen < 0 || payloadLen > len(buf)-frameHeaderLen {
		return Frame{}, false
	}
	payload := buf[frameHeaderLen : frameHeaderLen+payloadLen]
	if binary.LittleEndian.Uint32(buf[36:]) != crc32.ChecksumIEEE(payload) {
		return Frame{}, false
	}
	f := Frame{
		Seq: binary.LittleEndian.Uint64(buf[16:]),
		TS:  int64(binary.LittleEndian.Uint64(buf[24:])),
	}
	if f.Seq == 0 {
		return Frame{}, false
	}
	for len(payload) >= 8 {
		typ := binary.LittleEndian.Uint32(payload[0:])
		n := int(binary.LittleEndian.Uint32(payload[4:]))
		if n < 0 || n > len(payload)-8 {
			return Frame{}, false
		}
		data := payload[8 : 8+n]
		switch typ {
		case secEvents:
			if n%eventLen != 0 {
				return Frame{}, false
			}
			evs, ok := decodeEvents(data)
			if !ok {
				return Frame{}, false
			}
			f.Events = evs
		case secReport:
			f.Report = append(json.RawMessage(nil), data...)
		case secDecisions:
			f.Decisions = append(json.RawMessage(nil), data...)
		default:
			// Unknown section from a newer writer: skip, keep the rest.
		}
		payload = payload[8+n:]
	}
	if len(payload) != 0 {
		return Frame{}, false
	}
	return f, true
}

// PostMortem is the decoded black box: every CRC-valid, current-epoch
// frame in the region, sorted by ascending sequence number.
type PostMortem struct {
	// Epoch is the device format epoch the frames belong to.
	Epoch uint64
	// Layout is the region geometry read back from the header.
	Layout Layout
	// Frames holds the surviving frames, oldest first, strictly
	// increasing Seq.
	Frames []Frame
}

// LastSeq is the newest surviving frame's sequence number (0 when empty).
func (pm *PostMortem) LastSeq() uint64 {
	if pm == nil || len(pm.Frames) == 0 {
		return 0
	}
	return pm.Frames[len(pm.Frames)-1].Seq
}

// Newest returns the most recent frame, or nil when the box is empty.
func (pm *PostMortem) Newest() *Frame {
	if pm == nil || len(pm.Frames) == 0 {
		return nil
	}
	return &pm.Frames[len(pm.Frames)-1]
}

// Events merges every frame's event snapshot into one deduplicated
// timeline, ordered oldest frame first. Snapshots are non-destructive so
// consecutive frames overlap heavily; events are flat comparable values,
// so exact duplicates collapse.
func (pm *PostMortem) Events() []obs.Event {
	if pm == nil {
		return nil
	}
	seen := make(map[obs.Event]struct{})
	var out []obs.Event
	for _, f := range pm.Frames {
		for _, ev := range f.Events {
			if _, dup := seen[ev]; dup {
				continue
			}
			seen[ev] = struct{}{}
			out = append(out, ev)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].TS < out[j].TS })
	return out
}

// LastReport decodes the newest frame's goodput report. ok is false when
// no surviving frame carried one.
func (pm *PostMortem) LastReport() (obs.GoodputReport, bool) {
	if pm == nil {
		return obs.GoodputReport{}, false
	}
	for i := len(pm.Frames) - 1; i >= 0; i-- {
		if len(pm.Frames[i].Report) == 0 {
			continue
		}
		var rep obs.GoodputReport
		if err := json.Unmarshal(pm.Frames[i].Report, &rep); err == nil {
			return rep, true
		}
	}
	return obs.GoodputReport{}, false
}

// LastDecisions decodes the newest frame's decision tail (oldest first;
// empty when no surviving frame carried one).
func (pm *PostMortem) LastDecisions() []decision.Decision {
	if pm == nil {
		return nil
	}
	for i := len(pm.Frames) - 1; i >= 0; i-- {
		if len(pm.Frames[i].Decisions) == 0 {
			continue
		}
		var ds []decision.Decision
		if err := json.Unmarshal(pm.Frames[i].Decisions, &ds); err == nil {
			return ds
		}
	}
	return nil
}

// Decode reads and validates the black-box region at off. regionBytes is
// the size the superblock reserved (0 skips the cross-check). Torn or
// stale frames are silently skipped; Decode only errors when the region
// itself is unreadable or its header is invalid. epoch is the expected
// device format epoch — frames from any other epoch are rejected.
func Decode(dev storage.Device, off, regionBytes int64, epoch uint64) (*PostMortem, error) {
	head := make([]byte, SectorBytes)
	if err := dev.ReadAt(head, off); err != nil {
		return nil, fmt.Errorf("blackbox: read region header: %w", err)
	}
	l, hdrEpoch, err := decodeHeader(head, regionBytes)
	if err != nil {
		return nil, err
	}
	if hdrEpoch != epoch {
		return nil, fmt.Errorf("blackbox: region epoch %d does not match device epoch %d", hdrEpoch, epoch)
	}
	pm := &PostMortem{Epoch: epoch, Layout: l}
	buf := make([]byte, l.FrameBytes)
	for s := 0; s < l.Slots; s++ {
		if err := dev.ReadAt(buf, off+SectorBytes+int64(s)*l.FrameBytes); err != nil {
			return nil, fmt.Errorf("blackbox: read frame slot %d: %w", s, err)
		}
		if f, ok := decodeFrame(buf, epoch); ok {
			pm.Frames = append(pm.Frames, f)
		}
	}
	sort.Slice(pm.Frames, func(i, j int) bool { return pm.Frames[i].Seq < pm.Frames[j].Seq })
	// Slot addressing (seq % F) makes duplicate sequence numbers
	// impossible from a correct writer; drop any that corruption let
	// through so the tail is strictly monotonic by construction.
	dedup := pm.Frames[:0]
	for _, f := range pm.Frames {
		if n := len(dedup); n > 0 && dedup[n-1].Seq == f.Seq {
			continue
		}
		dedup = append(dedup, f)
	}
	pm.Frames = dedup
	return pm, nil
}

// Journal appends telemetry frames to a formatted region. It is not
// safe for concurrent use; the Flusher serializes access.
type Journal struct {
	dev     storage.Device
	off     int64
	layout  Layout
	epoch   uint64
	nextSeq uint64
	buf     []byte // slot-sized scratch, reused across appends
}

// OpenJournal reads the region header at off and positions the journal
// after the newest surviving frame, so telemetry written after a restart
// extends the pre-crash tail instead of overwriting it.
func OpenJournal(dev storage.Device, off, regionBytes int64, epoch uint64) (*Journal, error) {
	pm, err := Decode(dev, off, regionBytes, epoch)
	if err != nil {
		return nil, err
	}
	return &Journal{
		dev:     dev,
		off:     off,
		layout:  pm.Layout,
		epoch:   epoch,
		nextSeq: pm.LastSeq() + 1,
		buf:     make([]byte, pm.Layout.FrameBytes),
	}, nil
}

// Append encodes f (Seq and any oversized sections are overridden /
// trimmed) into the next frame slot and makes it durable with a covering
// sync. It returns the sequence number written.
func (j *Journal) Append(f Frame) (uint64, error) {
	f.Seq = j.nextSeq
	encodeFrame(j.buf, j.epoch, f)
	slot := int64((f.Seq - 1) % uint64(j.layout.Slots))
	if err := j.dev.Persist(j.buf, j.off+SectorBytes+slot*j.layout.FrameBytes); err != nil {
		return 0, err
	}
	j.nextSeq++
	return f.Seq, nil
}

// LastSeq is the sequence number of the most recently appended frame
// (0 before the first append on a fresh region).
func (j *Journal) LastSeq() uint64 { return j.nextSeq - 1 }

// Layout returns the region geometry.
func (j *Journal) Layout() Layout { return j.layout }
