package blackbox

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pccheck/internal/obs"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

func testLayout() Layout { return LayoutFor(SectorBytes+4*2048, 2048) }

func formatRAM(t *testing.T, l Layout, epoch uint64) storage.Device {
	t.Helper()
	dev := storage.NewRAM(l.RegionBytes())
	if err := Format(dev, 0, epoch, l); err != nil {
		t.Fatalf("Format: %v", err)
	}
	return dev
}

func evs(n int, base int64) []obs.Event {
	out := make([]obs.Event, n)
	for i := range out {
		out[i] = obs.Event{TS: base + int64(i), Phase: obs.PhasePublish, Counter: uint64(i + 1), Slot: -1, Writer: -1, Rank: -1}
	}
	return out
}

func TestLayoutFor(t *testing.T) {
	l := LayoutFor(1<<20, 0)
	if l.FrameBytes != 8<<10 {
		t.Fatalf("default frame bytes = %d, want 8192", l.FrameBytes)
	}
	if l.RegionBytes() > 1<<20 {
		t.Fatalf("layout %+v exceeds its budget", l)
	}
	if l = LayoutFor(0, 100); l.Slots < 2 || l.FrameBytes%SectorBytes != 0 {
		t.Fatalf("tiny budget layout %+v: want >=2 sector-aligned slots", l)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	l := testLayout()
	dev := formatRAM(t, l, 7)
	j, err := OpenJournal(dev, 0, l.RegionBytes(), 7)
	if err != nil {
		t.Fatal(err)
	}
	report := json.RawMessage(`{"goodput_ratio":0.93}`)
	decisions := json.RawMessage(`[{"kind":"retune"}]`)
	seq, err := j.Append(Frame{TS: 1234, Events: evs(3, 100), Report: report, Decisions: decisions})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	pm, err := Decode(dev, 0, l.RegionBytes(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Frames) != 1 {
		t.Fatalf("decoded %d frames, want 1", len(pm.Frames))
	}
	f := pm.Frames[0]
	if f.Seq != 1 || f.TS != 1234 {
		t.Fatalf("frame header mismatch: %+v", f)
	}
	if len(f.Events) != 3 || f.Events[2].TS != 102 || f.Events[0].Phase != obs.PhasePublish {
		t.Fatalf("events did not round-trip: %+v", f.Events)
	}
	if !bytes.Equal(f.Report, report) || !bytes.Equal(f.Decisions, decisions) {
		t.Fatal("report/decisions did not round-trip")
	}
}

func TestTornFrameSkipped(t *testing.T) {
	l := testLayout()
	dev := formatRAM(t, l, 1)
	j, _ := OpenJournal(dev, 0, l.RegionBytes(), 1)
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Frame{TS: int64(i), Events: evs(2, int64(i)*10)}); err != nil {
			t.Fatal(err)
		}
	}
	// Tear frame 2 (slot 1): flip a payload byte.
	off := SectorBytes + 1*l.FrameBytes + frameHeaderLen + 5
	b := []byte{0xFF}
	if err := dev.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
	pm, err := Decode(dev, 0, l.RegionBytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Frames) != 2 {
		t.Fatalf("decoded %d frames, want 2 (torn one skipped)", len(pm.Frames))
	}
	if pm.Frames[0].Seq != 1 || pm.Frames[1].Seq != 3 {
		t.Fatalf("surviving seqs = %d,%d, want 1,3", pm.Frames[0].Seq, pm.Frames[1].Seq)
	}
}

func TestReformatFencesStaleFrames(t *testing.T) {
	l := testLayout()
	dev := formatRAM(t, l, 1)
	j, _ := OpenJournal(dev, 0, l.RegionBytes(), 1)
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Frame{Events: evs(1, int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	// Reformat under a new epoch WITHOUT zeroing the frame slots — the
	// old frames are intact on-device but must not be resurrected.
	if err := Format(dev, 0, 2, l); err != nil {
		t.Fatal(err)
	}
	pm, err := Decode(dev, 0, l.RegionBytes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Frames) != 0 {
		t.Fatalf("reformat resurrected %d stale frames", len(pm.Frames))
	}
	// And the journal resumes from scratch under the new epoch.
	j2, err := OpenJournal(dev, 0, l.RegionBytes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := j2.Append(Frame{Events: evs(1, 0)}); err != nil || seq != 1 {
		t.Fatalf("post-reformat append = (%d, %v), want (1, nil)", seq, err)
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	l := testLayout() // 4 slots
	dev := formatRAM(t, l, 1)
	j, _ := OpenJournal(dev, 0, l.RegionBytes(), 1)
	for i := 0; i < 10; i++ {
		if _, err := j.Append(Frame{TS: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pm, err := Decode(dev, 0, l.RegionBytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm.Frames) != l.Slots {
		t.Fatalf("decoded %d frames, want %d", len(pm.Frames), l.Slots)
	}
	for i, f := range pm.Frames {
		if want := uint64(7 + i); f.Seq != want {
			t.Fatalf("frame %d seq = %d, want %d (newest window)", i, f.Seq, want)
		}
	}
}

func TestOversizedPayloadTrimsToNewestEvents(t *testing.T) {
	l := testLayout() // 2 KiB frames: ~32 events max
	dev := formatRAM(t, l, 1)
	j, _ := OpenJournal(dev, 0, l.RegionBytes(), 1)
	if _, err := j.Append(Frame{Events: evs(200, 0)}); err != nil {
		t.Fatal(err)
	}
	pm, err := Decode(dev, 0, l.RegionBytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got := pm.Frames[0].Events
	if len(got) == 0 || len(got) >= 200 {
		t.Fatalf("trim kept %d events, want a proper tail", len(got))
	}
	if got[len(got)-1].TS != 199 {
		t.Fatalf("trim dropped the newest event: tail ends at TS %d, want 199", got[len(got)-1].TS)
	}
}

func TestDecodeRejectsBadHeaders(t *testing.T) {
	l := testLayout()
	dev := formatRAM(t, l, 1)
	if _, err := Decode(dev, 0, l.RegionBytes(), 2); err == nil || !strings.Contains(err.Error(), "epoch") {
		t.Fatalf("epoch mismatch not rejected: %v", err)
	}
	if _, err := Decode(dev, 0, l.RegionBytes()+SectorBytes, 1); err == nil {
		t.Fatal("superblock/header size mismatch not rejected")
	}
	zero := storage.NewRAM(l.RegionBytes())
	if _, err := Decode(zero, 0, l.RegionBytes(), 1); err == nil {
		t.Fatal("unformatted region not rejected")
	}
}

func TestFlusherSnapshotsChain(t *testing.T) {
	rec := obs.NewRecorder(256)
	dec := decision.New(decision.Config{}, rec)
	led := obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05}, dec)

	l := testLayout()
	dev := formatRAM(t, l, 3)
	j, err := OpenJournal(dev, 0, l.RegionBytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := NewFlusher(j, led, Config{FlushEvery: -1, EventTail: 8, DecisionTail: 4})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 20; i++ {
		led.Emit(obs.Event{TS: int64(i), Phase: obs.PhasePublish, Counter: uint64(i + 1), Bytes: 100, Slot: -1, Writer: -1, Rank: -1})
	}
	seq, err := fl.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 1 || fl.LastSeq() != 1 {
		t.Fatalf("flush seq = %d lastSeq = %d, want 1/1", seq, fl.LastSeq())
	}

	pm, err := Decode(dev, 0, l.RegionBytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	f := pm.Newest()
	if len(f.Events) != 8 {
		t.Fatalf("frame captured %d events, want the 8-event tail", len(f.Events))
	}
	if f.Events[7].Counter != 20 {
		t.Fatalf("tail ends at counter %d, want 20 (newest kept)", f.Events[7].Counter)
	}
	if len(f.Report) == 0 {
		t.Fatal("ledger report missing from frame")
	}
	if rep, ok := pm.LastReport(); !ok || rep.Published != 20 {
		t.Fatalf("report did not round-trip: %+v ok=%v", rep, ok)
	}

	// The snapshot was non-destructive: the ring still holds the events.
	if n := len(rec.SnapshotEvents()); n != 20 {
		t.Fatalf("flusher consumed ring events: %d left, want 20", n)
	}

	var mbuf bytes.Buffer
	fl.WriteMetrics(&mbuf)
	for _, fam := range []string{
		"pccheck_blackbox_flushes_total 1",
		"pccheck_blackbox_flush_errors_total 0",
		"pccheck_blackbox_last_seq 1",
		"pccheck_blackbox_events_snapshotted_total 8",
		"pccheck_blackbox_flushed_bytes_total",
	} {
		if !strings.Contains(mbuf.String(), fam) {
			t.Fatalf("metrics missing %q:\n%s", fam, mbuf.String())
		}
	}

	fl.Stop() // final frame
	if fl.LastSeq() != 2 {
		t.Fatalf("Stop did not write the final frame: last seq %d", fl.LastSeq())
	}
	fl.Stop() // idempotent
	if fl.LastSeq() != 2 {
		t.Fatal("second Stop wrote another frame")
	}
}

func TestFlusherRequiresRecorder(t *testing.T) {
	l := testLayout()
	dev := formatRAM(t, l, 1)
	j, _ := OpenJournal(dev, 0, l.RegionBytes(), 1)
	if _, err := NewFlusher(j, nil, Config{}); err == nil {
		t.Fatal("flusher accepted a chain without a flight recorder")
	}
}

func TestFlusherRetriesTransientFaults(t *testing.T) {
	l := testLayout()
	ram := storage.NewRAM(l.RegionBytes())
	if err := Format(ram, 0, 1, l); err != nil {
		t.Fatal(err)
	}
	// Fault device: the next persist fails transiently, then clears.
	fd := storage.NewFaultDevice(ram)
	j, err := OpenJournal(fd, 0, l.RegionBytes(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fd.SetSchedule(storage.OpPersist, storage.Schedule{After: 1, Count: 1, Err: storage.ErrInjectedTransient})
	rec := obs.NewRecorder(64)
	fl, err := NewFlusher(j, rec, Config{FlushEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fl.Flush(); err != nil {
		t.Fatalf("transient fault not absorbed: %v", err)
	}
}
