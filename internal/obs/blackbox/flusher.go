package blackbox

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// Defaults for Config zero values.
const (
	DefaultFlushEvery   = 250 * time.Millisecond
	DefaultEventTail    = 128
	DefaultDecisionTail = 16
)

// Config sizes and paces the black box. The zero value disables it
// (Bytes == 0); any positive Bytes enables the region.
type Config struct {
	// Bytes is the region size budget carved out of the checkpoint
	// device at format time. 0 disables the black box entirely.
	Bytes int64
	// FrameBytes is the per-frame slot size, rounded up to a whole
	// number of 512-byte sectors (0 selects 8 KiB). Larger frames hold a
	// longer event tail per flush; smaller frames retain more flushes.
	FrameBytes int64
	// FlushEvery is the background flush cadence and therefore the
	// worst-case telemetry tail lost to a crash. 0 selects
	// DefaultFlushEvery; negative disables the background flusher so
	// only explicit Flush calls write frames (deterministic tests, crash
	// exploration).
	FlushEvery time.Duration
	// EventTail bounds the flight-ring events captured per frame
	// (newest kept; 0 selects DefaultEventTail).
	EventTail int
	// DecisionTail bounds the decision-trace entries captured per frame
	// (newest kept; 0 selects DefaultDecisionTail).
	DecisionTail int
	// RetryAttempts bounds transient-I/O retries per flush, mirroring
	// the persist path's error-classified retry (0 selects 3).
	RetryAttempts int
	// RetryBase is the first retry's backoff; it doubles per attempt up
	// to RetryMax (0 selects 1ms base, 50ms cap).
	RetryBase time.Duration
	// RetryMax caps the backoff growth.
	RetryMax time.Duration
}

// Enabled reports whether this configuration reserves a region.
func (c Config) Enabled() bool { return c.Bytes > 0 }

// Layout resolves the configured geometry.
func (c Config) Layout() Layout { return LayoutFor(c.Bytes, c.FrameBytes) }

func (c Config) withDefaults() Config {
	if c.FlushEvery == 0 {
		c.FlushEvery = DefaultFlushEvery
	}
	if c.EventTail <= 0 {
		c.EventTail = DefaultEventTail
	}
	if c.DecisionTail <= 0 {
		c.DecisionTail = DefaultDecisionTail
	}
	if c.RetryAttempts <= 0 {
		c.RetryAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 50 * time.Millisecond
	}
	return c
}

// Flusher periodically snapshots the observer chain — flight ring,
// goodput ledger, decision tail — into black-box frames. It never sits
// on the Emit hot path: sources are read with non-destructive snapshots
// from a dedicated goroutine (or explicit Flush calls), so an attached
// flusher adds zero allocations and zero synchronization to emitters.
type Flusher struct {
	cfg Config
	j   *Journal

	rec *obs.Recorder
	led *obs.Ledger
	dec *decision.Recorder

	mu     sync.Mutex // serializes Flush with itself and Stop
	stop   chan struct{}
	done   chan struct{}
	closed bool

	flushes     atomic.Uint64
	flushErrors atomic.Uint64
	bytesOut    atomic.Uint64
	eventsSnap  atomic.Uint64
	lastSeq     atomic.Uint64
}

// NewFlusher builds a flusher over an opened journal, pulling sources
// from the observer chain: the first *obs.Recorder (required — without a
// flight ring there is nothing to record), plus the first *obs.Ledger
// and *decision.Recorder when present. Call Start to begin background
// flushing, or Flush directly for explicit control.
func NewFlusher(j *Journal, chain obs.Observer, cfg Config) (*Flusher, error) {
	rec := obs.FindRecorder(chain)
	if rec == nil {
		return nil, fmt.Errorf("blackbox: observer chain has no flight recorder")
	}
	f := &Flusher{
		cfg: cfg.withDefaults(),
		j:   j,
		rec: rec,
		led: obs.FindLedger(chain),
		dec: decision.Find(chain),
	}
	f.lastSeq.Store(j.LastSeq())
	return f, nil
}

// Start launches the background flush loop at the configured cadence.
// It is a no-op when FlushEvery is negative (manual mode) or the flusher
// was already started or stopped.
func (f *Flusher) Start() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cfg.FlushEvery < 0 || f.stop != nil || f.closed {
		return
	}
	f.stop = make(chan struct{})
	f.done = make(chan struct{})
	go f.loop(f.stop, f.done)
}

func (f *Flusher) loop(stop, done chan struct{}) {
	defer close(done)
	tick := time.NewTicker(f.cfg.FlushEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			f.Flush() //nolint:errcheck // counted in flushErrors; next tick retries
		}
	}
}

// Stop halts the background loop (if running) and writes one final
// frame, so the tail present at clean shutdown is durable. Safe to call
// more than once.
func (f *Flusher) Stop() {
	f.mu.Lock()
	stop, done := f.stop, f.done
	f.stop, f.done = nil, nil
	alreadyClosed := f.closed
	f.closed = true
	f.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	if !alreadyClosed {
		f.flush() //nolint:errcheck // best-effort final frame
	}
}

// Flush snapshots the sources and appends one frame, returning the
// sequence number written. Concurrent calls serialize.
func (f *Flusher) Flush() (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.flush()
}

func (f *Flusher) flush() (uint64, error) {
	frame := Frame{TS: time.Now().UnixNano()}

	events := f.rec.SnapshotEvents()
	if len(events) > f.cfg.EventTail {
		events = events[len(events)-f.cfg.EventTail:]
	}
	frame.Events = events
	f.eventsSnap.Add(uint64(len(events)))

	if f.led != nil {
		if data, err := json.Marshal(f.led.Report()); err == nil {
			frame.Report = data
		}
	}
	if f.dec != nil {
		ds := f.dec.Decisions()
		if len(ds) > f.cfg.DecisionTail {
			ds = ds[len(ds)-f.cfg.DecisionTail:]
		}
		if len(ds) > 0 {
			if data, err := json.Marshal(ds); err == nil {
				frame.Decisions = data
			}
		}
	}

	var seq uint64
	err := f.retryIO(func() error {
		var err error
		seq, err = f.j.Append(frame)
		return err
	})
	if err != nil {
		f.flushErrors.Add(1)
		return 0, err
	}
	f.flushes.Add(1)
	f.bytesOut.Add(uint64(f.j.Layout().FrameBytes))
	f.lastSeq.Store(seq)
	return seq, nil
}

// retryIO mirrors the persist path's error-classified retry: transient
// storage errors are retried with exponential backoff up to the attempt
// budget; permanent and corrupt errors fail immediately.
func (f *Flusher) retryIO(op func() error) error {
	backoff := f.cfg.RetryBase
	var err error
	for attempt := 1; attempt <= f.cfg.RetryAttempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if storage.Classify(err) != storage.ClassTransient || attempt == f.cfg.RetryAttempts {
			return err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > f.cfg.RetryMax {
			backoff = f.cfg.RetryMax
		}
	}
	return err
}

// LastSeq is the newest frame sequence number durably written (0 before
// the first flush on a fresh region).
func (f *Flusher) LastSeq() uint64 { return f.lastSeq.Load() }

// WriteMetrics implements obs.MetricsWriter with the pccheck_blackbox_*
// families.
func (f *Flusher) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("pccheck_blackbox_flushes_total", "Black-box telemetry frames durably written.", f.flushes.Load())
	counter("pccheck_blackbox_flush_errors_total", "Black-box flushes that failed after retries.", f.flushErrors.Load())
	counter("pccheck_blackbox_flushed_bytes_total", "Bytes written to the black-box region.", f.bytesOut.Load())
	counter("pccheck_blackbox_events_snapshotted_total", "Flight-ring events captured into black-box frames (snapshots overlap).", f.eventsSnap.Load())
	fmt.Fprintf(w, "# HELP pccheck_blackbox_last_seq Sequence number of the newest durable black-box frame.\n")
	fmt.Fprintf(w, "# TYPE pccheck_blackbox_last_seq gauge\npccheck_blackbox_last_seq %d\n", f.lastSeq.Load())
}
