package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucketing: HDR-style fixed geometry — 32 linear sub-buckets
// per power of two of nanoseconds. Values below histSubCount land in exact
// unit buckets; above that, bucket width doubles every octave, giving a
// worst-case relative error of 1/histSubCount ≈ 3% across the full int64
// nanosecond range (≈292 years). The geometry is fixed at compile time so
// Observe is two atomic adds and Percentile is a linear walk — no
// allocation, no locks, no configuration.
const (
	histSubBits  = 5
	histSubCount = 1 << histSubBits
	histBuckets  = (64 - histSubBits) * histSubCount
)

// Histogram is an allocation-free, concurrency-safe latency histogram.
// The zero value is ready to use. Record durations in nanoseconds.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < histSubCount {
		return int(u)
	}
	exp := bits.Len64(u) - histSubBits - 1
	sub := u >> uint(exp) // in [histSubCount, 2*histSubCount)
	return exp<<histSubBits + int(sub)
}

// bucketUpper returns the largest value a bucket holds — percentiles are
// reported as this conservative upper edge.
func bucketUpper(idx int) int64 {
	if idx < histSubCount {
		return int64(idx)
	}
	exp := idx>>histSubBits - 1
	sub := int64(idx - exp<<histSubBits)
	return (sub+1)<<uint(exp) - 1
}

// Observe records one duration (nanoseconds; negatives clamp to zero).
func (h *Histogram) Observe(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the cumulative observed nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Percentile returns an upper-bound estimate of the q-quantile
// (0 < q ≤ 1) in nanoseconds, 0 when nothing was observed. Under
// concurrent Observe calls the estimate is weakly consistent.
func (h *Histogram) Percentile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= target {
			upper := bucketUpper(i)
			if m := h.max.Load(); upper > m {
				// The top occupied bucket's edge can overshoot the true
				// maximum; never report past it.
				upper = m
			}
			return upper
		}
	}
	return h.max.Load()
}
