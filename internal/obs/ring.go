package obs

import (
	"runtime"
	"sync/atomic"
)

// ring is a bounded multi-producer multi-consumer event buffer in the
// style of Vyukov's MPMC array queue: every cell carries an atomic
// sequence number that hands exclusive ownership back and forth between
// producers and consumers, so the Event payload itself is written and read
// with plain (race-free) copies. When the ring is full, producers discard
// the oldest buffered event instead of blocking or dropping the newest —
// flight-recorder semantics: the buffer always holds the most recent
// window of activity.
type ring struct {
	mask    uint64
	enq     atomic.Uint64
	deq     atomic.Uint64
	dropped atomic.Uint64
	cells   []ringCell
}

type ringCell struct {
	// seq encodes the cell's state relative to the cursors: seq == pos
	// means free for the producer claiming position pos; seq == pos+1
	// means it holds that position's event; seq == pos+capacity means the
	// event was consumed and the cell is free for the next lap.
	seq atomic.Uint64
	ev  Event
}

// newRing allocates a ring holding capacity events, rounded up to a power
// of two (minimum 64 so bursts of concurrent producers cannot lap each
// other pathologically).
func newRing(capacity int) *ring {
	n := 64
	for n < capacity {
		n <<= 1
	}
	r := &ring{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// put stores ev, discarding the oldest buffered event when full. It is
// lock-free: a stalled producer cannot block others, and no path
// allocates.
func (r *ring) put(ev Event) {
	for {
		pos := r.enq.Load()
		c := &r.cells[pos&r.mask]
		seq := c.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				c.ev = ev
				c.seq.Store(pos + 1)
				return
			}
		case seq < pos:
			// The cell still holds an event from one lap ago: the ring is
			// full. Consume and discard the oldest, then retry.
			r.stealOldest()
		default:
			// Another producer claimed this position and has not yet
			// published; its seq store is imminent.
			runtime.Gosched()
		}
	}
}

// stealOldest discards the event at the consume cursor, if any, freeing
// one cell for a producer that found the ring full.
func (r *ring) stealOldest() {
	pos := r.deq.Load()
	c := &r.cells[pos&r.mask]
	if c.seq.Load() != pos+1 {
		return // empty, or a concurrent consumer got there first
	}
	if r.deq.CompareAndSwap(pos, pos+1) {
		c.seq.Store(pos + uint64(len(r.cells)))
		r.dropped.Add(1)
	}
}

// drain consumes every buffered event, oldest first. Producers may keep
// appending concurrently; drain returns once it catches an empty cursor.
func (r *ring) drain() []Event {
	var out []Event
	for {
		pos := r.deq.Load()
		c := &r.cells[pos&r.mask]
		if c.seq.Load() != pos+1 {
			return out
		}
		if r.deq.CompareAndSwap(pos, pos+1) {
			ev := c.ev
			c.seq.Store(pos + uint64(len(r.cells)))
			out = append(out, ev)
		}
	}
}

// snapshot copies every buffered event, oldest first, WITHOUT consuming:
// the cursors do not move, so concurrent consumers (drain, another
// snapshot) still observe the same events. The copy is weakly consistent
// under concurrent producers — a cell recycled mid-copy is detected by
// re-reading its sequence and the walk stops there, so the result is
// always a valid (possibly shortened) prefix of the buffered window.
func (r *ring) snapshot() []Event {
	start := r.deq.Load()
	out := make([]Event, 0, r.len())
	for pos := start; pos < start+uint64(len(r.cells)); pos++ {
		c := &r.cells[pos&r.mask]
		if c.seq.Load() != pos+1 {
			break // empty cell (or consumed ahead of us): end of window
		}
		ev := c.ev
		if c.seq.Load() != pos+1 {
			break // recycled mid-copy; ev may be torn — stop before it
		}
		out = append(out, ev)
	}
	return out
}

// len reports how many events are currently buffered (approximate under
// concurrency).
func (r *ring) len() int {
	e, d := r.enq.Load(), r.deq.Load()
	if e < d {
		return 0
	}
	return int(e - d)
}
