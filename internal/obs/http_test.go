package obs

import (
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pccheck/internal/promtext"
)

// TestPublishExpvarReportsBinding is the two-recorder regression: expvar
// names are global, so the second recorder published under the same name
// must learn it is NOT the one being served — previously this was
// silently ignored.
func TestPublishExpvarReportsBinding(t *testing.T) {
	r1, r2 := NewRecorder(64), NewRecorder(64)
	// Names are process-global and permanent; use a test-unique one.
	const name = "pccheck-test-publish-expvar-binding"
	if !r1.PublishExpvar(name) {
		t.Fatalf("first recorder not bound to fresh name")
	}
	if !r1.PublishExpvar(name) {
		t.Fatalf("re-publishing from the owning recorder reported unbound")
	}
	if r2.PublishExpvar(name) {
		t.Fatalf("second recorder claimed a name the first already owns")
	}
}

// TestMetricsExpositionLints: the full combined exposition (recorder +
// ledger) must survive the strict Prometheus text parser — the same check
// CI's metrics-lint runs against a live endpoint.
func TestMetricsExpositionLints(t *testing.T) {
	rec := NewRecorder(256)
	led := NewLedger(LedgerConfig{SlowdownBudget: 1.05}, rec)
	for p := Phase(0); p < PhaseCount; p++ {
		ev := Event{Phase: p, Counter: 1, Bytes: 512, Value: 1, Slot: 0, Writer: 0, Rank: 1, Attempt: 1}
		if p.IsSpan() {
			ev.Dur = int64(time.Millisecond)
		}
		led.Emit(ev)
	}
	for i := 0; i < 64; i++ {
		led.IterDone(time.Millisecond, i%8 == 0)
	}
	srv := httptest.NewServer(metricsHandler(rec, led))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	want := map[string]bool{
		"pccheck_saves_total":                  false,
		"pccheck_failed_saves_total":           false,
		"pccheck_flight_ring_occupancy":        false,
		"pccheck_goodput_ratio":                false,
		"pccheck_checkpoint_staleness_seconds": false,
		"pccheck_rank_agree_lag_seconds":       false,
	}
	for _, f := range fams {
		if _, ok := want[f.Name]; ok {
			want[f.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("family %s missing from combined exposition", name)
		}
	}
}

// TestConcurrentScrapeWhileEmitting hammers /metrics while emitter
// goroutines are hot — under -race this is the data-race canary for the
// whole snapshot path (ring occupancy, histogram reads, ledger report).
func TestConcurrentScrapeWhileEmitting(t *testing.T) {
	rec := NewRecorder(256)
	led := NewLedger(LedgerConfig{SlowdownBudget: 1.1, Window: 8}, rec)
	srv := httptest.NewServer(metricsHandler(rec, led))
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := Phase(rng.Intn(int(PhaseCount)))
				ev := Event{Phase: p, Counter: uint64(rng.Intn(100)), Slot: int32(rng.Intn(4)), Writer: 0, Rank: int32(rng.Intn(4))}
				if p.IsSpan() {
					ev.Dur = int64(rng.Intn(1e6))
				}
				led.Emit(ev)
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			led.IterDone(time.Duration(500+i%100)*time.Microsecond, i%10 == 0)
		}
	}()

	for i := 0; i < 25; i++ {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := promtext.Parse(resp.Body); err != nil {
			resp.Body.Close()
			t.Fatalf("scrape %d failed lint under concurrent emit: %v", i, err)
		}
		resp.Body.Close()
	}
	close(stop)
	wg.Wait()
}

// TestRecorderWriteMetricsSavesIdentity: saves_total must equal
// published + obsolete + failed.
func TestRecorderWriteMetricsSavesIdentity(t *testing.T) {
	rec := NewRecorder(64)
	rec.Emit(Event{Phase: PhasePublish})
	rec.Emit(Event{Phase: PhasePublish})
	rec.Emit(Event{Phase: PhaseObsolete})
	rec.Emit(Event{Phase: PhaseSaveFailed})
	s := rec.Snapshot()
	if s.Saves != 4 || s.FailedSaves != 1 {
		t.Fatalf("Saves=%d FailedSaves=%d, want 4/1", s.Saves, s.FailedSaves)
	}
	var b strings.Builder
	rec.WriteMetrics(&b)
	out := b.String()
	for _, want := range []string{
		"pccheck_saves_total 4",
		"pccheck_failed_saves_total 1",
		"pccheck_flight_ring_occupancy 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
