package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The goodput ledger is the macro accounting layer on top of the flight
// recorder: where the Recorder answers "how long did the barrier take?",
// the Ledger answers "are we inside our slowdown budget, how much
// wall-clock went to checkpoint stalls vs compute, and which rank is
// gating global consistency?" — the paper's evaluation currency (§3.4,
// §5): useful iterations per second under a user-set max-slowdown budget
// q, with wasted work on failure bounded by checkpoint staleness.
//
// The Ledger is an Observer: chain it in front of a Recorder (or any
// other observer) via Config.Observer and it attributes the event stream
// into stall buckets while forwarding every event unchanged. The training
// loops (Loop, AdaptiveLoop) additionally feed it explicit iteration and
// drain timings; recovery paths call AddRecovery. Emit stays lock-free
// and allocation-free — the nil-observer zero-cost contract extends to a
// chained ledger.

// StallKind indexes the ledger's wall-clock attribution buckets.
type StallKind int

// Attribution buckets. The first three are training-synchronous (they
// extend iteration wall-clock); SlotWait and Persist overlap training
// (checkpoint-internal time that only interferes with compute through
// shared bandwidth), so the wall-clock identity is
//
//	wall ≈ compute + snapshot + drain + recovery
//
// with slot-wait and persist reported alongside as concurrent load.
const (
	// StallSnapshot is the synchronous state capture in Loop/AdaptiveLoop
	// — the only part of a tick that stalls training (§3.1 quiescence).
	StallSnapshot StallKind = iota
	// StallSlotWait is checkpoint time spent waiting for a free slot
	// (background: overlaps training, Listing 1's deq loop).
	StallSlotWait
	// StallPersist is writer-goroutine persist time plus retry backoff
	// (background: overlaps training, competes for device bandwidth).
	StallPersist
	// StallDrain is time spent in Drain waiting for in-flight saves.
	StallDrain
	// StallRecovery is restart time spent loading and restoring a
	// checkpoint (fed by AddRecovery).
	StallRecovery

	// StallKindCount is the number of attribution buckets.
	StallKindCount
)

var stallNames = [StallKindCount]string{
	"snapshot", "slot-wait", "persist", "drain", "recovery",
}

// String returns the bucket's canonical hyphenated name.
func (k StallKind) String() string {
	if k >= 0 && k < StallKindCount {
		return stallNames[k]
	}
	return "stall?"
}

// MaxLedgerRanks bounds the straggler table. Events for ranks outside
// [0, MaxLedgerRanks) are still forwarded but not attributed (counted in
// the report's DroppedRankEvents).
const MaxLedgerRanks = 64

// MaxLedgerTiers bounds the per-tier durability table. Tier-drain events
// for levels outside [0, MaxLedgerTiers) are forwarded but not attributed.
const MaxLedgerTiers = 8

// LedgerConfig tunes the goodput ledger. The zero value is usable: no
// slowdown budget (SLO tracking off), baseline learned from
// checkpoint-free iterations, default smoothing.
type LedgerConfig struct {
	// SlowdownBudget is q, the acceptable slowdown (e.g. 1.05 = 5%
	// overhead, the knob of Eq. (3)). Values ≤ 1 disable budget tracking:
	// slowdown is still measured, but breaches are never counted.
	SlowdownBudget float64
	// BaselineIterTime is the no-checkpoint iteration time t. When zero
	// the ledger learns it as an EWMA over checkpoint-free iterations —
	// set it explicitly (e.g. from the §3.4 profile) for a baseline that
	// excludes persist interference.
	BaselineIterTime time.Duration
	// PredictedIterTime and PredictedTw are the §3.4 model inputs that
	// chose N* and f* (Profile/Analyze). When set, the report includes
	// observed-vs-predicted drift ratios — the signal that the tuner's
	// assumptions no longer hold.
	PredictedIterTime time.Duration
	PredictedTw       time.Duration
	// Smoothing is the EWMA coefficient in (0, 1] for iteration, save and
	// baseline averages (default 0.2).
	Smoothing float64
	// Window is the iteration block size over which the slowdown EWMA is
	// folded (default 32). Slowdown is measured per block rather than per
	// iteration so a single checkpoint-bearing iteration inside a long
	// interval does not read as a budget breach.
	Window int
}

func (c LedgerConfig) withDefaults() LedgerConfig {
	if c.Smoothing <= 0 || c.Smoothing > 1 {
		c.Smoothing = 0.2
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	return c
}

// ledgerTier is one durability tier's drain accounting. All fields are
// atomics: tier-drain events arrive from the drainer goroutine concurrently
// with report readers.
type ledgerTier struct {
	drains    atomic.Uint64 // PhaseTierDrain cycles observed
	drainedB  atomic.Int64  // cumulative bytes copied to this tier
	errors    atomic.Uint64 // PhaseTierError count
	resyncs   atomic.Uint64 // PhaseTierResync count
	failovers atomic.Uint64 // write-path failovers AWAY from this tier
	durable   atomic.Uint64 // newest checkpoint counter durable here
	durableNS atomic.Int64  // when durable last advanced (event TS + Dur)
}

// ledgerRank is one rank's straggler accounting. All fields are atomics:
// agree and gate events arrive from coordinator and worker goroutines.
type ledgerRank struct {
	rounds     atomic.Uint64 // PhaseAgree spans observed for this rank
	agreeNS    atomic.Int64  // cumulative agree-round time
	maxAgreeNS atomic.Int64  // slowest agree round
	publishLag atomic.Uint64 // cumulative local-counter − agreed gap (PhaseAgree Value)
	gated      atomic.Uint64 // rounds this rank gated (PhaseAgreeGate)
	gateLagNS  atomic.Int64  // cumulative first→last report spread of gated rounds
	gateIDGap  atomic.Uint64 // cumulative freshest−oldest ID gap of gated rounds
}

// Ledger attributes training wall-clock to compute and stall buckets and
// derives the paper's headline quantities continuously. Create one with
// NewLedger, attach it via Config.Observer (chaining to a Recorder if you
// also want the flight recorder), and read it with Report, WriteMetrics
// or the package's Serve. All methods are safe for concurrent use; a nil
// *Ledger is inert.
type Ledger struct {
	cfg  LedgerConfig
	next Observer
	// blockSink receives completed slowdown blocks (the decision
	// recorder's regret join); discovered once by walking the downstream
	// chain at construction.
	blockSink BlockSink

	startNS int64

	// Event-side state: updated inside Emit, atomics only.
	stallNS        [StallKindCount]atomic.Int64
	published      atomic.Uint64
	obsolete       atomic.Uint64
	failed         atomic.Uint64
	deltaSaves     atomic.Uint64
	keyframeSaves  atomic.Uint64
	bytesLogical   atomic.Int64
	bytesPersisted atomic.Int64
	lastPublishNS  atomic.Int64
	lastPublishCtr atomic.Uint64
	ewmaSaveNS     atomicFloat
	ewmaSlotWaitNS atomicFloat
	ranks          [MaxLedgerRanks]ledgerRank
	maxRank        atomic.Int64 // highest rank attributed, -1 when none
	tiers          [MaxLedgerTiers]ledgerTier
	maxTier        atomic.Int64 // highest tier attributed, -1 when none
	droppedRankEvs atomic.Uint64
	rankDeaths     atomic.Uint64
	rankRejoins    atomic.Uint64
	deadRanks      atomic.Int64 // currently-dead gauge (deaths − rejoins)

	// Iteration-side state: fed by the training loop (IterDone, DrainDone),
	// guarded by mu — these run once per iteration, off the persist path.
	mu          sync.Mutex
	iters       uint64
	ckptIters   uint64
	iterNS      int64
	ewmaIterSec float64
	ewmaBaseSec float64
	blockNS     int64
	blockIters  int
	ewmaSlow    float64
	breaches    uint64
	inBreach    bool
}

// atomicFloat stores a float64 in an atomic.Uint64 (IEEE bits), with a
// CAS-loop EWMA fold so Emit stays lock-free.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) ewma(v, alpha float64) {
	for {
		old := f.bits.Load()
		cur := math.Float64frombits(old)
		next := v
		if cur != 0 {
			next = alpha*v + (1-alpha)*cur
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// BlockSink receives the ledger's completed slowdown blocks: the mean
// iteration seconds over one Window, the learned baseline (0 when not yet
// known), and the iteration count. The decision recorder implements it to
// join retune decisions against measured overhead; the ledger discovers a
// sink by walking its downstream observer chain, so chaining
// Ledger → decision.Recorder → Recorder wires the join automatically.
type BlockSink interface {
	LedgerBlock(meanIterSeconds, baselineSeconds float64, iters int)
}

// NewLedger builds a goodput ledger that forwards every event to next
// (nil for a stand-alone ledger). Attach the returned ledger — not next —
// as Config.Observer so it sees the full event stream.
func NewLedger(cfg LedgerConfig, next Observer) *Ledger {
	l := &Ledger{cfg: cfg.withDefaults(), next: next, startNS: time.Now().UnixNano()}
	l.maxRank.Store(-1)
	l.maxTier.Store(-1)
	for o := next; o != nil; {
		if s, ok := o.(BlockSink); ok {
			l.blockSink = s
			break
		}
		n, ok := o.(interface{ Next() Observer })
		if !ok {
			break
		}
		o = n.Next()
	}
	return l
}

// Next returns the observer this ledger forwards to (nil when none).
func (l *Ledger) Next() Observer {
	if l == nil {
		return nil
	}
	return l.next
}

// Emit implements Observer: the event is attributed into the ledger's
// buckets and forwarded to the chained observer. Emit performs only
// atomic operations — no locks, no allocations — so chaining a ledger
// preserves the engine's zero-allocation save path. A nil *Ledger
// discards the event.
func (l *Ledger) Emit(ev Event) {
	if l == nil {
		return
	}
	switch ev.Phase {
	case PhaseSnapshot:
		l.stallNS[StallSnapshot].Add(ev.Dur)
	case PhaseSlotWait:
		if ev.Value != 0 {
			l.stallNS[StallSlotWait].Add(ev.Dur)
		}
		l.ewmaSlotWaitNS.ewma(float64(ev.Dur), l.cfg.Smoothing)
	case PhasePersist:
		l.stallNS[StallPersist].Add(ev.Dur)
	case PhaseIORetry:
		// Retry backoff holds a writer goroutine: persist-path interference.
		l.stallNS[StallPersist].Add(ev.Dur)
	case PhaseSave:
		l.ewmaSaveNS.ewma(float64(ev.Dur), l.cfg.Smoothing)
	case PhasePublish:
		l.published.Add(1)
		storeMaxInt64(&l.lastPublishNS, ev.TS)
		storeMaxUint64(&l.lastPublishCtr, ev.Counter)
		// Bytes is what hit the device, Value the logical payload size. A
		// publish persisting fewer bytes than its logical size is a delta.
		l.bytesPersisted.Add(ev.Bytes)
		if ev.Value > 0 {
			l.bytesLogical.Add(ev.Value)
			if ev.Bytes != ev.Value {
				l.deltaSaves.Add(1)
			}
		} else {
			l.bytesLogical.Add(ev.Bytes)
		}
	case PhaseKeyframe:
		l.keyframeSaves.Add(1)
	case PhaseObsolete:
		l.obsolete.Add(1)
	case PhaseSaveFailed:
		l.failed.Add(1)
	case PhaseAgree:
		if c := l.rank(ev.Rank); c != nil {
			c.rounds.Add(1)
			c.agreeNS.Add(ev.Dur)
			storeMaxInt64(&c.maxAgreeNS, ev.Dur)
			if ev.Value > 0 {
				c.publishLag.Add(uint64(ev.Value))
			}
		}
	case PhaseAgreeGate:
		if c := l.rank(ev.Rank); c != nil {
			c.gated.Add(1)
			c.gateLagNS.Add(ev.Dur)
			if ev.Value > 0 {
				c.gateIDGap.Add(uint64(ev.Value))
			}
		}
	case PhaseTierDrain:
		if c := l.tier(ev.Slot); c != nil {
			c.drains.Add(1)
			c.drainedB.Add(ev.Bytes)
			storeMaxUint64(&c.durable, ev.Counter)
			storeMaxInt64(&c.durableNS, ev.TS+ev.Dur)
		}
	case PhaseTierError:
		if c := l.tier(ev.Slot); c != nil {
			c.errors.Add(1)
		}
	case PhaseTierResync:
		if c := l.tier(ev.Slot); c != nil {
			c.resyncs.Add(1)
		}
	case PhaseTierFailover:
		// The catch-up replay stalls the persist path; the failover itself
		// is attributed to the tier that was abandoned (carried in Value).
		l.stallNS[StallPersist].Add(ev.Dur)
		if c := l.tier(int32(ev.Value)); c != nil {
			c.failovers.Add(1)
		}
	case PhaseRankDead:
		l.rankDeaths.Add(1)
		l.deadRanks.Add(1)
	case PhaseRankRejoined:
		l.rankRejoins.Add(1)
		if l.deadRanks.Add(-1) < 0 {
			l.deadRanks.Add(1) // rejoin without a recorded death; clamp at 0
		}
	}
	if l.next != nil {
		l.next.Emit(ev)
	}
}

// tier returns the durability cell for tier index t (carried in Event.Slot
// by the tier phases); out-of-range indexes are not attributed.
func (l *Ledger) tier(t int32) *ledgerTier {
	if t < 0 || t >= MaxLedgerTiers {
		return nil
	}
	storeMaxInt64(&l.maxTier, int64(t))
	return &l.tiers[t]
}

// rank returns the straggler cell for r, recording out-of-range ranks as
// dropped.
func (l *Ledger) rank(r int32) *ledgerRank {
	if r < 0 || r >= MaxLedgerRanks {
		l.droppedRankEvs.Add(1)
		return nil
	}
	storeMaxInt64(&l.maxRank, int64(r))
	return &l.ranks[r]
}

func storeMaxInt64(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func storeMaxUint64(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// IterDone records one completed training iteration of wall-clock d.
// checkpointed marks iterations whose interval carried a snapshot capture
// (the loops set it on the iteration following a checkpoint tick); the
// baseline iteration time is learned from the others. The training loops
// call this automatically when a Ledger is the configured observer.
func (l *Ledger) IterDone(d time.Duration, checkpointed bool) {
	if l == nil || d < 0 {
		return
	}
	sec := d.Seconds()
	alpha := l.cfg.Smoothing
	l.mu.Lock()
	defer l.mu.Unlock()
	l.iters++
	l.iterNS += int64(d)
	if checkpointed {
		l.ckptIters++
	}
	if l.ewmaIterSec == 0 {
		l.ewmaIterSec = sec
	} else {
		l.ewmaIterSec = alpha*sec + (1-alpha)*l.ewmaIterSec
	}
	if !checkpointed && l.cfg.BaselineIterTime == 0 {
		if l.ewmaBaseSec == 0 {
			l.ewmaBaseSec = sec
		} else {
			l.ewmaBaseSec = alpha*sec + (1-alpha)*l.ewmaBaseSec
		}
	}
	// Slowdown folds per block of Window iterations so one slow
	// checkpoint-bearing iteration inside a long interval is averaged
	// against its checkpoint-free neighbours — the paper's q compares
	// run-level throughput, not single-iteration latency.
	l.blockNS += int64(d)
	l.blockIters++
	if l.blockIters < l.cfg.Window {
		return
	}
	base := l.baselineLocked()
	blockMean := float64(l.blockNS) / float64(l.blockIters) / 1e9
	if base > 0 {
		slow := blockMean / base
		if l.ewmaSlow == 0 {
			l.ewmaSlow = slow
		} else {
			l.ewmaSlow = alpha*slow + (1-alpha)*l.ewmaSlow
		}
		if q := l.cfg.SlowdownBudget; q > 1 {
			if l.ewmaSlow > q {
				if !l.inBreach {
					l.inBreach = true
					l.breaches++
				}
			} else {
				l.inBreach = false
			}
		}
	}
	if l.blockSink != nil {
		l.blockSink.LedgerBlock(blockMean, base, l.blockIters)
	}
	l.blockNS, l.blockIters = 0, 0
}

// Breach reports the ledger's slowdown-budget state: how many times the
// block-EWMA slowdown has crossed above the budget q, and whether it is
// above it right now. Zero-valued without a budget configured.
func (l *Ledger) Breach() (breaches uint64, inBreach bool) {
	if l == nil {
		return 0, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.breaches, l.inBreach
}

// baselineLocked returns the no-checkpoint iteration time in seconds.
func (l *Ledger) baselineLocked() float64 {
	if l.cfg.BaselineIterTime > 0 {
		return l.cfg.BaselineIterTime.Seconds()
	}
	return l.ewmaBaseSec
}

// DrainDone records time spent waiting in Drain for in-flight saves.
func (l *Ledger) DrainDone(d time.Duration) {
	if l == nil || d <= 0 {
		return
	}
	l.stallNS[StallDrain].Add(int64(d))
}

// AddRecovery records restart time spent loading and restoring a
// checkpoint — the recovery component of the paper's wasted-work bound.
func (l *Ledger) AddRecovery(d time.Duration) {
	if l == nil || d <= 0 {
		return
	}
	l.stallNS[StallRecovery].Add(int64(d))
}

// ObservedTw returns the measured per-checkpoint write time: the EWMA of
// engine save spans minus the EWMA slot wait (queueing is not writing).
// Zero until the first save completes. AdaptiveLoop feeds this into its
// Eq. (3) re-derivation so the interval tracks measured, not assumed,
// write times.
func (l *Ledger) ObservedTw() time.Duration {
	if l == nil {
		return 0
	}
	tw := l.ewmaSaveNS.load() - l.ewmaSlotWaitNS.load()
	if tw <= 0 {
		return 0
	}
	return time.Duration(tw)
}

// RankAgreeStats is one rank's row in the straggler table.
type RankAgreeStats struct {
	Rank int `json:"rank"`
	// Rounds and AgreeSeconds summarise this rank's own PhaseAgree spans
	// (local publish → group agreement).
	Rounds          uint64  `json:"rounds"`
	AgreeSeconds    float64 `json:"agree_seconds"`
	MaxAgreeSeconds float64 `json:"max_agree_seconds"`
	// PublishLagTotal is the cumulative counter gap between this rank's
	// local publishes and the rounds' agreed IDs.
	PublishLagTotal uint64 `json:"publish_lag_total"`
	// GatedRounds counts rounds where this rank's report gated the
	// agreement (rank 0's PhaseAgreeGate view); GateLagSeconds is how much
	// wall-clock its late reports held the rounds open, GateIDGapTotal how
	// many checkpoints behind the freshest rank it reported.
	GatedRounds    uint64  `json:"gated_rounds"`
	GateLagSeconds float64 `json:"gate_lag_seconds"`
	GateIDGapTotal uint64  `json:"gate_id_gap_total"`
}

// TierDurability is one storage tier's row in the per-tier durability view:
// "durable-to-SSD at iter K, durable-to-remote at iter K−3" as data.
type TierDurability struct {
	// Tier is the level index within the tiered device (1 = first level
	// below the fast tier).
	Tier int `json:"tier"`
	// DurableCounter is the newest checkpoint counter the drainer has made
	// durable at this tier; DrainLagCheckpoints is how many published
	// checkpoints it trails the engine by (the staleness cost of losing
	// every faster tier).
	DurableCounter      uint64 `json:"durable_counter"`
	DrainLagCheckpoints int64  `json:"drain_lag_checkpoints"`
	// StalenessSeconds is the age of this tier's durable watermark — the
	// wasted-work bound if recovery had to start from this tier right now.
	StalenessSeconds float64 `json:"staleness_seconds"`
	// Drains / DrainedBytes / Errors / Resyncs summarise the drainer's work
	// against this tier; Failovers counts write-path re-routes away from it
	// after permanent errors exhausted the retry budget.
	Drains       uint64 `json:"drains"`
	DrainedBytes int64  `json:"drained_bytes"`
	Errors       uint64 `json:"errors"`
	Resyncs      uint64 `json:"resyncs"`
	Failovers    uint64 `json:"failovers,omitempty"`
}

// GoodputReport is a point-in-time summary of the ledger — the
// machine-readable form behind Report, FormatReport and the JSON export.
type GoodputReport struct {
	// WallSeconds is the attributed wall-clock: iteration time + drain +
	// recovery. ComputeSeconds is what remains after subtracting the
	// synchronous snapshot stalls — the "useful work" numerator of
	// goodput.
	WallSeconds    float64 `json:"wall_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	// Stall attribution, one bucket per StallKind. Snapshot, drain and
	// recovery are training-synchronous; slot-wait and persist overlap
	// training (concurrent checkpoint load, not wall-clock extension).
	SnapshotStallSeconds float64 `json:"snapshot_stall_seconds"`
	SlotWaitStallSeconds float64 `json:"slot_wait_stall_seconds"`
	PersistBusySeconds   float64 `json:"persist_busy_seconds"`
	DrainSeconds         float64 `json:"drain_seconds"`
	RecoverySeconds      float64 `json:"recovery_seconds"`

	Iterations           uint64  `json:"iterations"`
	CheckpointIterations uint64  `json:"checkpoint_iterations"`
	MeanIterSeconds      float64 `json:"mean_iter_seconds"`
	BaselineIterSeconds  float64 `json:"baseline_iter_seconds"`

	// GoodputRatio is ComputeSeconds / WallSeconds: the fraction of
	// wall-clock doing useful training work.
	GoodputRatio float64 `json:"goodput_ratio"`
	// ObservedSlowdown is the block-EWMA slowdown vs the baseline;
	// MeanSlowdown the run-cumulative equivalent. SlowdownBudget echoes
	// the configured q (0 = untracked); BudgetBreaches counts EWMA
	// excursions above q, InBreach whether one is ongoing.
	ObservedSlowdown float64 `json:"observed_slowdown"`
	MeanSlowdown     float64 `json:"mean_slowdown"`
	SlowdownBudget   float64 `json:"slowdown_budget"`
	BudgetBreaches   uint64  `json:"budget_breaches"`
	InBreach         bool    `json:"in_breach"`

	// StalenessSeconds is the age of the newest durable checkpoint — the
	// wasted-work bound if the process died now. LastPublishedCounter is
	// that checkpoint's order.
	StalenessSeconds     float64 `json:"staleness_seconds"`
	LastPublishedCounter uint64  `json:"last_published_counter"`
	Published            uint64  `json:"published"`
	Obsolete             uint64  `json:"obsolete"`
	FailedSaves          uint64  `json:"failed_saves"`

	// Delta checkpointing view: published saves split by kind, logical vs
	// actually-persisted byte volume, and their ratio (1 = full
	// checkpoints, smaller = bytes the deltas saved).
	DeltaSaves     uint64  `json:"delta_saves,omitempty"`
	KeyframeSaves  uint64  `json:"keyframe_saves,omitempty"`
	LogicalBytes   int64   `json:"logical_bytes,omitempty"`
	BytesPersisted int64   `json:"bytes_persisted,omitempty"`
	DeltaRatio     float64 `json:"delta_ratio,omitempty"`

	// §3.4 model drift: observed EWMAs vs the Profile/Analyze predictions
	// that chose N* and f*. Ratios are 0 when a prediction is unset.
	ObservedTwSeconds    float64 `json:"observed_tw_seconds"`
	ObservedSaveSeconds  float64 `json:"observed_save_seconds"`
	PredictedTwSeconds   float64 `json:"predicted_tw_seconds"`
	PredictedIterSeconds float64 `json:"predicted_iter_seconds"`
	TwDriftRatio         float64 `json:"tw_drift_ratio"`
	IterDriftRatio       float64 `json:"iter_drift_ratio"`

	// Tiers is the per-tier durable-staleness table of a tiered device,
	// fastest lower tier first (empty without tier-drain events).
	Tiers []TierDurability `json:"tiers,omitempty"`

	// Stragglers is the per-rank agree table, worst gate lag first.
	Stragglers        []RankAgreeStats `json:"stragglers,omitempty"`
	DroppedRankEvents uint64           `json:"dropped_rank_events,omitempty"`

	// Distributed fault-tolerance view (rank 0's failure detector):
	// cumulative death/rejoin transitions and the currently-dead gauge.
	// Nonzero DeadRanks with a nonzero GoodputRatio is the degraded-mode
	// signature — the group is committing without a rank.
	RankDeaths  uint64 `json:"rank_deaths,omitempty"`
	RankRejoins uint64 `json:"rank_rejoins,omitempty"`
	DeadRanks   int64  `json:"dead_ranks,omitempty"`
}

// Stall returns the bucket's attributed seconds.
func (r GoodputReport) Stall(k StallKind) float64 {
	switch k {
	case StallSnapshot:
		return r.SnapshotStallSeconds
	case StallSlotWait:
		return r.SlotWaitStallSeconds
	case StallPersist:
		return r.PersistBusySeconds
	case StallDrain:
		return r.DrainSeconds
	case StallRecovery:
		return r.RecoverySeconds
	}
	return 0
}

// Report summarises the ledger. It is weakly consistent under concurrent
// emitters, like Recorder.Snapshot.
func (l *Ledger) Report() GoodputReport {
	var rep GoodputReport
	if l == nil {
		return rep
	}
	l.mu.Lock()
	iters, ckptIters, iterNS := l.iters, l.ckptIters, l.iterNS
	ewmaSlow, breaches, inBreach := l.ewmaSlow, l.breaches, l.inBreach
	base := l.baselineLocked()
	l.mu.Unlock()

	rep.Iterations = iters
	rep.CheckpointIterations = ckptIters
	rep.SnapshotStallSeconds = secs(l.stallNS[StallSnapshot].Load())
	rep.SlotWaitStallSeconds = secs(l.stallNS[StallSlotWait].Load())
	rep.PersistBusySeconds = secs(l.stallNS[StallPersist].Load())
	rep.DrainSeconds = secs(l.stallNS[StallDrain].Load())
	rep.RecoverySeconds = secs(l.stallNS[StallRecovery].Load())

	iterSec := secs(iterNS)
	rep.WallSeconds = iterSec + rep.DrainSeconds + rep.RecoverySeconds
	rep.ComputeSeconds = iterSec - rep.SnapshotStallSeconds
	if rep.ComputeSeconds < 0 {
		rep.ComputeSeconds = 0
	}
	if rep.WallSeconds > 0 {
		rep.GoodputRatio = rep.ComputeSeconds / rep.WallSeconds
	}
	if iters > 0 {
		rep.MeanIterSeconds = iterSec / float64(iters)
	}
	rep.BaselineIterSeconds = base
	rep.ObservedSlowdown = ewmaSlow
	if base > 0 && rep.MeanIterSeconds > 0 {
		rep.MeanSlowdown = rep.MeanIterSeconds / base
	}
	rep.SlowdownBudget = l.cfg.SlowdownBudget
	rep.BudgetBreaches = breaches
	rep.InBreach = inBreach

	rep.Published = l.published.Load()
	rep.Obsolete = l.obsolete.Load()
	rep.FailedSaves = l.failed.Load()
	rep.DeltaSaves = l.deltaSaves.Load()
	rep.KeyframeSaves = l.keyframeSaves.Load()
	rep.LogicalBytes = l.bytesLogical.Load()
	rep.BytesPersisted = l.bytesPersisted.Load()
	if rep.LogicalBytes > 0 {
		rep.DeltaRatio = float64(rep.BytesPersisted) / float64(rep.LogicalBytes)
	}
	rep.LastPublishedCounter = l.lastPublishCtr.Load()
	ref := l.lastPublishNS.Load()
	if ref == 0 {
		ref = l.startNS
	}
	rep.StalenessSeconds = secs(time.Now().UnixNano() - ref)
	if rep.StalenessSeconds < 0 {
		rep.StalenessSeconds = 0
	}

	rep.ObservedSaveSeconds = l.ewmaSaveNS.load() / 1e9
	rep.ObservedTwSeconds = l.ObservedTw().Seconds()
	rep.PredictedTwSeconds = l.cfg.PredictedTw.Seconds()
	rep.PredictedIterSeconds = l.cfg.PredictedIterTime.Seconds()
	if rep.PredictedTwSeconds > 0 && rep.ObservedTwSeconds > 0 {
		rep.TwDriftRatio = rep.ObservedTwSeconds / rep.PredictedTwSeconds
	}
	if rep.PredictedIterSeconds > 0 && rep.MeanIterSeconds > 0 {
		rep.IterDriftRatio = rep.MeanIterSeconds / rep.PredictedIterSeconds
	}

	nowNS := time.Now().UnixNano()
	maxTier := l.maxTier.Load()
	for t := int64(0); t <= maxTier && t < MaxLedgerTiers; t++ {
		c := &l.tiers[t]
		row := TierDurability{
			Tier:           int(t),
			DurableCounter: c.durable.Load(),
			Drains:         c.drains.Load(),
			DrainedBytes:   c.drainedB.Load(),
			Errors:         c.errors.Load(),
			Resyncs:        c.resyncs.Load(),
			Failovers:      c.failovers.Load(),
		}
		if row.Drains == 0 && row.Errors == 0 && row.Resyncs == 0 && row.Failovers == 0 {
			continue
		}
		if lag := int64(rep.LastPublishedCounter) - int64(row.DurableCounter); lag > 0 {
			row.DrainLagCheckpoints = lag
		}
		ref := c.durableNS.Load()
		if ref == 0 {
			ref = l.startNS
		}
		if age := secs(nowNS - ref); age > 0 {
			row.StalenessSeconds = age
		}
		rep.Tiers = append(rep.Tiers, row)
	}

	maxRank := l.maxRank.Load()
	for r := int64(0); r <= maxRank && r < MaxLedgerRanks; r++ {
		c := &l.ranks[r]
		row := RankAgreeStats{
			Rank:            int(r),
			Rounds:          c.rounds.Load(),
			AgreeSeconds:    secs(c.agreeNS.Load()),
			MaxAgreeSeconds: secs(c.maxAgreeNS.Load()),
			PublishLagTotal: c.publishLag.Load(),
			GatedRounds:     c.gated.Load(),
			GateLagSeconds:  secs(c.gateLagNS.Load()),
			GateIDGapTotal:  c.gateIDGap.Load(),
		}
		if row.Rounds == 0 && row.GatedRounds == 0 {
			continue
		}
		rep.Stragglers = append(rep.Stragglers, row)
	}
	sort.SliceStable(rep.Stragglers, func(i, j int) bool {
		a, b := rep.Stragglers[i], rep.Stragglers[j]
		if a.GatedRounds != b.GatedRounds {
			return a.GatedRounds > b.GatedRounds
		}
		return a.GateLagSeconds > b.GateLagSeconds
	})
	rep.DroppedRankEvents = l.droppedRankEvs.Load()
	rep.RankDeaths = l.rankDeaths.Load()
	rep.RankRejoins = l.rankRejoins.Load()
	rep.DeadRanks = l.deadRanks.Load()
	if rep.DeadRanks < 0 {
		rep.DeadRanks = 0
	}
	return rep
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

// formatTierBytes renders a byte count with a binary-unit suffix for the
// per-tier summary lines.
func formatTierBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// WriteJSON writes the report as indented JSON — the machine-readable
// export behind pccheck-bench -json.
func (l *Ledger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l.Report())
}

// FormatReport renders rep as the human end-of-run summary printed by the
// commands.
func FormatReport(w io.Writer, rep GoodputReport) {
	fmt.Fprintf(w, "goodput   ratio %.4f over %.2fs wall (%d iterations, %d with checkpoints)\n",
		rep.GoodputRatio, rep.WallSeconds, rep.Iterations, rep.CheckpointIterations)
	fmt.Fprintf(w, "ledger    compute %.3fs | snapshot %.3fs | drain %.3fs | recovery %.3fs || overlapped: slot-wait %.3fs, persist %.3fs\n",
		rep.ComputeSeconds, rep.SnapshotStallSeconds, rep.DrainSeconds, rep.RecoverySeconds,
		rep.SlotWaitStallSeconds, rep.PersistBusySeconds)
	if rep.SlowdownBudget > 1 {
		fmt.Fprintf(w, "slo       slowdown %.4f (mean %.4f) vs budget q=%.4f — %d breach(es)%s\n",
			rep.ObservedSlowdown, rep.MeanSlowdown, rep.SlowdownBudget, rep.BudgetBreaches,
			map[bool]string{true: ", IN BREACH", false: ""}[rep.InBreach])
	} else if rep.ObservedSlowdown > 0 {
		fmt.Fprintf(w, "slo       slowdown %.4f (mean %.4f), no budget configured\n",
			rep.ObservedSlowdown, rep.MeanSlowdown)
	}
	fmt.Fprintf(w, "durable   checkpoint %d, staleness %.2fs (wasted-work bound) — %d published, %d obsolete, %d failed\n",
		rep.LastPublishedCounter, rep.StalenessSeconds, rep.Published, rep.Obsolete, rep.FailedSaves)
	if rep.DeltaSaves > 0 || rep.KeyframeSaves > 0 {
		fmt.Fprintf(w, "delta     %d delta / %d keyframe saves, %d of %d bytes persisted (ratio %.3f)\n",
			rep.DeltaSaves, rep.KeyframeSaves, rep.BytesPersisted, rep.LogicalBytes, rep.DeltaRatio)
	}
	if rep.PredictedTwSeconds > 0 || rep.PredictedIterSeconds > 0 {
		fmt.Fprintf(w, "model     observed Tw %.4fs vs predicted %.4fs (drift %.2fx); iter %.4fs vs %.4fs (drift %.2fx)\n",
			rep.ObservedTwSeconds, rep.PredictedTwSeconds, rep.TwDriftRatio,
			rep.MeanIterSeconds, rep.PredictedIterSeconds, rep.IterDriftRatio)
	}
	for _, t := range rep.Tiers {
		fmt.Fprintf(w, "tier %-3d  durable checkpoint %d (lag %d behind published), staleness %.2fs — %d drain(s), %s, %d error(s), %d resync(s)\n",
			t.Tier, t.DurableCounter, t.DrainLagCheckpoints, t.StalenessSeconds,
			t.Drains, formatTierBytes(t.DrainedBytes), t.Errors, t.Resyncs)
	}
	for _, s := range rep.Stragglers {
		fmt.Fprintf(w, "rank %-3d  gated %d round(s) by %.3fs (ID gap %d); %d agree rounds, %.3fs total, max %.3fs, publish lag %d\n",
			s.Rank, s.GatedRounds, s.GateLagSeconds, s.GateIDGapTotal,
			s.Rounds, s.AgreeSeconds, s.MaxAgreeSeconds, s.PublishLagTotal)
	}
	if rep.RankDeaths > 0 || rep.RankRejoins > 0 {
		fmt.Fprintf(w, "failures  %d rank death(s), %d rejoin(s), %d currently dead\n",
			rep.RankDeaths, rep.RankRejoins, rep.DeadRanks)
	}
}

// WriteMetrics renders the ledger as Prometheus text exposition — the
// goodput gauge family served next to the Recorder's on /metrics.
func (l *Ledger) WriteMetrics(w io.Writer) {
	rep := l.Report()
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	gauge("pccheck_goodput_ratio", "Fraction of wall-clock spent in useful training compute.", rep.GoodputRatio)
	gauge("pccheck_observed_slowdown", "Block-EWMA training slowdown vs the no-checkpoint baseline.", rep.ObservedSlowdown)
	gauge("pccheck_slowdown_budget", "Configured max-slowdown budget q (0 = untracked).", rep.SlowdownBudget)
	gauge("pccheck_checkpoint_staleness_seconds", "Age of the newest durable checkpoint (wasted-work bound).", rep.StalenessSeconds)
	gauge("pccheck_dead_ranks", "Workers currently declared dead by the failure detector.", float64(rep.DeadRanks))
	fmt.Fprintf(w, "# HELP pccheck_ledger_rank_deaths_total Rank-dead transitions seen by the goodput ledger.\n")
	fmt.Fprintf(w, "# TYPE pccheck_ledger_rank_deaths_total counter\npccheck_ledger_rank_deaths_total %d\n", rep.RankDeaths)
	fmt.Fprintf(w, "# HELP pccheck_ledger_rank_rejoins_total Rank-rejoined transitions seen by the goodput ledger.\n")
	fmt.Fprintf(w, "# TYPE pccheck_ledger_rank_rejoins_total counter\npccheck_ledger_rank_rejoins_total %d\n", rep.RankRejoins)
	fmt.Fprintf(w, "# HELP pccheck_slowdown_budget_breaches_total EWMA slowdown excursions above the budget q.\n")
	fmt.Fprintf(w, "# TYPE pccheck_slowdown_budget_breaches_total counter\npccheck_slowdown_budget_breaches_total %d\n", rep.BudgetBreaches)
	fmt.Fprintf(w, "# HELP pccheck_iterations_total Training iterations recorded by the goodput ledger.\n")
	fmt.Fprintf(w, "# TYPE pccheck_iterations_total counter\npccheck_iterations_total %d\n", rep.Iterations)
	fmt.Fprintf(w, "# HELP pccheck_stall_seconds_total Attributed wall-clock per stall bucket (snapshot/drain/recovery are training-synchronous; slot-wait/persist overlap training).\n")
	fmt.Fprintf(w, "# TYPE pccheck_stall_seconds_total counter\n")
	for k := StallKind(0); k < StallKindCount; k++ {
		fmt.Fprintf(w, "pccheck_stall_seconds_total{phase=%q} %g\n", k.String(), rep.Stall(k))
	}
	if len(rep.Stragglers) > 0 {
		fmt.Fprintf(w, "# HELP pccheck_rank_agree_lag_seconds Cumulative time a rank's late reports held agreement rounds open.\n")
		fmt.Fprintf(w, "# TYPE pccheck_rank_agree_lag_seconds gauge\n")
		for _, s := range rep.Stragglers {
			fmt.Fprintf(w, "pccheck_rank_agree_lag_seconds{rank=\"%d\"} %g\n", s.Rank, s.GateLagSeconds)
		}
		fmt.Fprintf(w, "# HELP pccheck_rank_gated_rounds_total Agreement rounds gated per rank.\n")
		fmt.Fprintf(w, "# TYPE pccheck_rank_gated_rounds_total counter\n")
		for _, s := range rep.Stragglers {
			fmt.Fprintf(w, "pccheck_rank_gated_rounds_total{rank=\"%d\"} %d\n", s.Rank, s.GatedRounds)
		}
	}
	if len(rep.Tiers) > 0 {
		tierGauge := func(name, help string, value func(TierDurability) float64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
			for _, t := range rep.Tiers {
				fmt.Fprintf(w, "%s{tier=\"%d\"} %g\n", name, t.Tier, value(t))
			}
		}
		tierCounter := func(name, help string, value func(TierDurability) uint64) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
			for _, t := range rep.Tiers {
				fmt.Fprintf(w, "%s{tier=\"%d\"} %d\n", name, t.Tier, value(t))
			}
		}
		tierGauge("pccheck_tier_durable_checkpoint",
			"Highest checkpoint counter the drainer has made durable at this tier.",
			func(t TierDurability) float64 { return float64(t.DurableCounter) })
		tierGauge("pccheck_tier_staleness_seconds",
			"Age of this tier's newest durable checkpoint (per-tier wasted-work bound).",
			func(t TierDurability) float64 { return t.StalenessSeconds })
		tierGauge("pccheck_tier_drain_lag_checkpoints",
			"Checkpoints published at tier 0 but not yet durable at this tier.",
			func(t TierDurability) float64 { return float64(t.DrainLagCheckpoints) })
		tierCounter("pccheck_tier_drains_total",
			"Completed drain cycles into this tier.",
			func(t TierDurability) uint64 { return t.Drains })
		tierCounter("pccheck_tier_drained_bytes_total",
			"Bytes the drainer has replayed into this tier.",
			func(t TierDurability) uint64 { return uint64(t.DrainedBytes) })
		tierCounter("pccheck_tier_drain_errors_total",
			"Drain attempts that exhausted retries against this tier.",
			func(t TierDurability) uint64 { return t.Errors })
		tierCounter("pccheck_tier_resyncs_total",
			"Full-image resyncs forced by journal overflow or tier recovery.",
			func(t TierDurability) uint64 { return t.Resyncs })
		tierCounter("pccheck_tier_failovers_from_total",
			"Write-path failovers away from this tier after permanent errors.",
			func(t TierDurability) uint64 { return t.Failovers })
	}
}
