package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Live metrics surface: a Prometheus-text /metrics handler plus the
// standard expvar /debug/vars, servable on any address with Serve. Both
// read weakly consistent snapshots — scraping never blocks emitters.

// MetricsWriter renders Prometheus text exposition onto w. Recorder and
// Ledger both implement it; Serve concatenates any number of writers onto
// one /metrics endpoint.
type MetricsWriter interface {
	WriteMetrics(w io.Writer)
}

// metricName converts a phase's hyphenated name to Prometheus form.
func metricName(p Phase) string {
	return "pccheck_" + strings.ReplaceAll(p.String(), "-", "_") + "_seconds"
}

// WriteMetrics renders the recorder as Prometheus text exposition: one
// summary per span phase (p50/p95/p99 quantiles, sum, count), the
// cumulative outcome counters, and the flight-ring occupancy gauge.
func (r *Recorder) WriteMetrics(w io.Writer) {
	s := r.Snapshot()
	for p := Phase(0); p < PhaseCount; p++ {
		if !p.IsSpan() {
			continue
		}
		ps := s.Phase(p)
		name := metricName(p)
		fmt.Fprintf(w, "# HELP %s Checkpoint %s phase latency.\n", name, p)
		fmt.Fprintf(w, "# TYPE %s summary\n", name)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, ps.P50.Seconds())
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %g\n", name, ps.P95.Seconds())
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, ps.P99.Seconds())
		fmt.Fprintf(w, "%s_sum %g\n", name, ps.Total.Seconds())
		fmt.Fprintf(w, "%s_count %d\n", name, ps.Count)
	}
	counter := func(name, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	counter("pccheck_saves_total", "Save attempts that reached the engine (published + obsolete + failed).", s.Saves)
	counter("pccheck_published_total", "Checkpoints that became the latest durable state.", s.Published)
	counter("pccheck_obsolete_total", "Checkpoints superseded before publishing.", s.Obsolete)
	counter("pccheck_failed_saves_total", "Saves that returned an error after starting.", s.FailedSaves)
	counter("pccheck_cas_retries_total", "Publish CAS retries against older registered values.", s.CASRetries)
	counter("pccheck_io_retries_total", "Persist-path I/O retries after transient faults.", s.IORetries)
	counter("pccheck_transient_faults_total", "Transient device faults observed on the persist path.", s.TransientFaults)
	counter("pccheck_injected_faults_total", "Faults fired by fault-injection devices.", s.InjectedFaults)
	counter("pccheck_slot_waits_total", "Saves that had to wait for a free slot.", s.SlotWaits)
	counter("pccheck_rank_deaths_total", "Workers declared dead by the distributed failure detector.", s.RankDeaths)
	counter("pccheck_rank_rejoins_total", "Previously dead workers that re-attached to the group.", s.RankRejoins)
	counter("pccheck_dropped_frames_total", "Coordination frames discarded by protocol validation.", s.DroppedFrames)
	counter("pccheck_bytes_written_total", "Published checkpoint payload bytes (logical).", s.BytesWritten)
	counter("pccheck_bytes_persisted_total", "Bytes that actually hit the device (smaller than logical when delta checkpointing is on).", s.BytesPersisted)
	counter("pccheck_delta_saves_total", "Published checkpoints stored as delta records.", s.DeltaSaves)
	counter("pccheck_keyframe_saves_total", "Published full checkpoints in delta mode.", s.KeyframeSaves)
	counter("pccheck_scrub_sweeps_total", "Completed integrity-scrub sweeps over the committed state.", s.ScrubSweeps)
	counter("pccheck_scrub_bytes_total", "Bytes CRC-verified by the scrubber.", s.ScrubBytes)
	counter("pccheck_scrub_corruptions_total", "Corruptions found by the scrubber (latent sector errors, bit rot, torn copies).", s.ScrubCorruptions)
	counter("pccheck_repairs_total", "Corrupt copies rewritten from the newest healthy tier or replica.", s.Repairs)
	counter("pccheck_scrub_quarantines_total", "Slots tombstoned because no healthy source could repair them.", s.Quarantines)
	counter("pccheck_tier_failover_total", "Write-path failovers away from a permanently failing tier.", s.TierFailovers)
	counter("pccheck_trace_dropped_events_total", "Flight-recorder events dropped (ring full).", s.DroppedEvents)
	counter("pccheck_flight_dropped_events_total", "Flight-recorder events dropped because the ring was full (oldest-event overwrites).", s.DroppedEvents)
	deltaRatio := 1.0
	if s.BytesWritten > 0 {
		deltaRatio = float64(s.BytesPersisted) / float64(s.BytesWritten)
	}
	fmt.Fprintf(w, "# HELP pccheck_delta_ratio Bytes persisted per logical byte checkpointed (1 = full checkpoints).\n")
	fmt.Fprintf(w, "# TYPE pccheck_delta_ratio gauge\npccheck_delta_ratio %g\n", deltaRatio)
	fmt.Fprintf(w, "# HELP pccheck_flight_ring_occupancy Flight-recorder ring entries currently buffered (drop pressure precursor; capacity %d).\n", s.RingCapacity)
	fmt.Fprintf(w, "# TYPE pccheck_flight_ring_occupancy gauge\npccheck_flight_ring_occupancy %d\n", s.RingOccupancy)
}

// metricsHandler serves the writers' concatenated exposition.
func metricsHandler(writers ...MetricsWriter) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, mw := range writers {
			if mw != nil {
				mw.WriteMetrics(w)
			}
		}
	})
}

// MetricsHandler serves the recorder as Prometheus text exposition.
func (r *Recorder) MetricsHandler() http.Handler {
	return metricsHandler(r)
}

// eventJSON is the wire form of one flight-recorder event on /events.
type eventJSON struct {
	TS      int64  `json:"ts"`
	Dur     int64  `json:"dur,omitempty"`
	Phase   string `json:"phase"`
	Counter uint64 `json:"counter,omitempty"`
	Bytes   int64  `json:"bytes,omitempty"`
	Value   int64  `json:"value,omitempty"`
	Slot    int32  `json:"slot"`
	Writer  int32  `json:"writer"`
	Rank    int32  `json:"rank"`
	Attempt int32  `json:"attempt,omitempty"`
}

// eventsHandler serves the tail of the flight ring as JSON without
// consuming it (SnapshotEvents), so dashboards polling /events never
// steal events from trace export or the black-box flusher. ?n= bounds
// the tail length (default 64).
func (r *Recorder) eventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 64
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v > 0 {
				n = v
			}
		}
		events := r.SnapshotEvents()
		if len(events) > n {
			events = events[len(events)-n:]
		}
		out := make([]eventJSON, len(events))
		for i, ev := range events {
			out[i] = eventJSON{
				TS: ev.TS, Dur: ev.Dur, Phase: ev.Phase.String(),
				Counter: ev.Counter, Bytes: ev.Bytes, Value: ev.Value,
				Slot: ev.Slot, Writer: ev.Writer, Rank: ev.Rank, Attempt: ev.Attempt,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out) //nolint:errcheck // best-effort HTTP write
	})
}

var expvarMu sync.Mutex

// PublishExpvar exposes the recorder's Snapshot as the expvar variable
// name (visible at /debug/vars). expvar names are global and permanent:
// the first recorder published under a name keeps it; later calls with
// the same name are no-ops. The return value reports whether THIS
// recorder is now the one bound to name — false means a different
// recorder already owns it and /debug/vars will show that one's numbers,
// a silent-shadowing hazard callers should surface.
func (r *Recorder) PublishExpvar(name string) bool {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if v := expvar.Get(name); v != nil {
		f, ok := v.(boundSnapshotFunc)
		return ok && f.r == r
	}
	expvar.Publish(name, boundSnapshotFunc{r: r})
	return true
}

// boundSnapshotFunc is the expvar.Var PublishExpvar registers. Keeping
// the owning recorder in the Var (rather than a closure) lets a repeat
// PublishExpvar from the same recorder report true.
type boundSnapshotFunc struct{ r *Recorder }

func (f boundSnapshotFunc) String() string {
	v := expvar.Func(func() any { return f.r.Snapshot() })
	return v.String()
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:9090"; an empty
// port picks a free one) exposing /metrics (Prometheus text) and
// /debug/vars (expvar, with the recorder published as "pccheck"). Extra
// metrics writers (e.g. a *Ledger) are appended to the /metrics output
// after the recorder's families. It returns the running server and its
// bound address; Close the server to stop. Errors from the background
// Serve goroutine after a successful Listen are dropped
// (http.ErrServerClosed on shutdown). If another recorder already owns
// the "pccheck" expvar name, /debug/vars keeps showing that one — Serve
// logs the shadowing so two-recorder processes aren't silently confusing.
func Serve(addr string, r *Recorder, extra ...MetricsWriter) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	if !r.PublishExpvar("pccheck") {
		log.Printf("obs: expvar name %q already bound to a different recorder; /debug/vars shows the first one", "pccheck")
	}
	writers := append([]MetricsWriter{r}, extra...)
	mux := http.NewServeMux()
	mux.Handle("/metrics", metricsHandler(writers...))
	mux.Handle("/events", r.eventsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return srv, ln.Addr().String(), nil
}
