package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
)

// Live metrics surface: a Prometheus-text /metrics handler plus the
// standard expvar /debug/vars, servable on any address with Serve. Both
// read weakly consistent snapshots — scraping never blocks emitters.

// metricName converts a phase's hyphenated name to Prometheus form.
func metricName(p Phase) string {
	return "pccheck_" + strings.ReplaceAll(p.String(), "-", "_") + "_seconds"
}

// MetricsHandler serves the recorder as Prometheus text exposition:
// one summary per span phase (p50/p95/p99 quantiles, sum, count) and the
// cumulative outcome counters.
func (r *Recorder) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s := r.Snapshot()
		for p := Phase(0); p < PhaseCount; p++ {
			if !p.IsSpan() {
				continue
			}
			ps := s.Phase(p)
			name := metricName(p)
			fmt.Fprintf(w, "# HELP %s Checkpoint %s phase latency.\n", name, p)
			fmt.Fprintf(w, "# TYPE %s summary\n", name)
			fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", name, ps.P50.Seconds())
			fmt.Fprintf(w, "%s{quantile=\"0.95\"} %g\n", name, ps.P95.Seconds())
			fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", name, ps.P99.Seconds())
			fmt.Fprintf(w, "%s_sum %g\n", name, ps.Total.Seconds())
			fmt.Fprintf(w, "%s_count %d\n", name, ps.Count)
		}
		counter := func(name, help string, v any) {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
		}
		counter("pccheck_published_total", "Checkpoints that became the latest durable state.", s.Published)
		counter("pccheck_obsolete_total", "Checkpoints superseded before publishing.", s.Obsolete)
		counter("pccheck_cas_retries_total", "Publish CAS retries against older registered values.", s.CASRetries)
		counter("pccheck_io_retries_total", "Persist-path I/O retries after transient faults.", s.IORetries)
		counter("pccheck_transient_faults_total", "Transient device faults observed on the persist path.", s.TransientFaults)
		counter("pccheck_injected_faults_total", "Faults fired by fault-injection devices.", s.InjectedFaults)
		counter("pccheck_slot_waits_total", "Saves that had to wait for a free slot.", s.SlotWaits)
		counter("pccheck_bytes_written_total", "Published checkpoint payload bytes.", s.BytesWritten)
		counter("pccheck_trace_dropped_events_total", "Flight-recorder events dropped (ring full).", s.DroppedEvents)
	})
}

var expvarMu sync.Mutex

// PublishExpvar exposes the recorder's Snapshot as the expvar variable
// name (visible at /debug/vars). expvar names are global and permanent:
// the first recorder published under a name keeps it; later calls with
// the same name are ignored.
func (r *Recorder) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// Serve starts an HTTP server on addr (e.g. "127.0.0.1:9090"; an empty
// port picks a free one) exposing /metrics (Prometheus text) and
// /debug/vars (expvar, with the recorder published as "pccheck"). It
// returns the running server and its bound address; Close the server to
// stop. Errors from the background Serve goroutine after a successful
// Listen are dropped (http.ErrServerClosed on shutdown).
func Serve(addr string, r *Recorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	r.PublishExpvar("pccheck")
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return srv, ln.Addr().String(), nil
}
