package obs

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketGeometry checks the index/edge inverse pair and the
// ~3% relative-error guarantee across the range.
func TestHistogramBucketGeometry(t *testing.T) {
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1e6, 1e9, 1e12, 1<<62 + 12345} {
		idx := bucketIndex(v)
		up := bucketUpper(idx)
		if up < v {
			t.Fatalf("bucketUpper(bucketIndex(%d)) = %d < value", v, up)
		}
		if v >= histSubCount && float64(up-v) > 0.0401*float64(v) {
			t.Fatalf("bucket error for %d: upper %d is %.1f%% off", v, up, 100*float64(up-v)/float64(v))
		}
		if idx > 0 && bucketUpper(idx-1) >= v {
			t.Fatalf("value %d belongs below bucket %d (prev upper %d)", v, idx, bucketUpper(idx-1))
		}
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i * 1000) // 1µs … 1ms
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("Count = %d", got)
	}
	p50 := h.Percentile(0.50)
	if p50 < 450_000 || p50 > 550_000 {
		t.Fatalf("p50 = %dns, want ≈500µs", p50)
	}
	p99 := h.Percentile(0.99)
	if p99 < 950_000 || p99 > 1_000_000 {
		t.Fatalf("p99 = %dns, want ≈990µs", p99)
	}
	if max := h.Max(); max != 1_000_000 {
		t.Fatalf("Max = %d", max)
	}
	if h.Percentile(1.0) > h.Max() {
		t.Fatalf("p100 %d exceeds max %d", h.Percentile(1.0), h.Max())
	}
}

func TestHistogramZeroValue(t *testing.T) {
	var h Histogram
	if h.Percentile(0.99) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("zero histogram must report zeros")
	}
	h.Observe(-5) // clamps
	if h.Percentile(0.5) != 0 {
		t.Fatal("negative observation must clamp to 0")
	}
}

// TestRingFIFOAndOverwrite drives the ring past capacity and checks
// flight-recorder semantics: the most recent window survives, in order.
func TestRingFIFOAndOverwrite(t *testing.T) {
	r := newRing(64)
	for i := 0; i < 200; i++ {
		r.put(Event{Counter: uint64(i)})
	}
	evs := r.drain()
	if len(evs) != 64 {
		t.Fatalf("drained %d events, want 64", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(200 - 64 + i); ev.Counter != want {
			t.Fatalf("event %d: counter %d, want %d (oldest dropped first)", i, ev.Counter, want)
		}
	}
	if got := r.dropped.Load(); got != 200-64 {
		t.Fatalf("dropped = %d, want %d", got, 200-64)
	}
	if again := r.drain(); len(again) != 0 {
		t.Fatalf("second drain returned %d events", len(again))
	}
}

// TestRingConcurrent hammers the ring from many producers while a
// consumer drains — the lock-freedom and race-safety test (run with
// -race).
func TestRingConcurrent(t *testing.T) {
	r := newRing(256)
	const producers = 8
	const perProducer = 5000
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				r.put(Event{Counter: uint64(p*perProducer + i), Phase: PhasePublish})
			}
		}(p)
	}
	var consumed int
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			consumed += len(r.drain())
			select {
			case <-stop:
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(stop)
	<-done
	total := consumed + len(r.drain()) + int(r.dropped.Load())
	if total != producers*perProducer {
		t.Fatalf("events lost: consumed+dropped = %d, want %d", total, producers*perProducer)
	}
}

func TestRecorderCountersAndSnapshot(t *testing.T) {
	r := NewRecorder(1024)
	base := time.Now().UnixNano()
	r.Emit(Event{Phase: PhaseSlotWait, TS: base, Dur: 1000, Value: 1, Slot: 0})
	r.Emit(Event{Phase: PhaseSlotWait, TS: base, Dur: 10, Value: 0, Slot: 1})
	r.Emit(Event{Phase: PhaseSave, TS: base, Dur: int64(time.Millisecond), Counter: 1, Bytes: 4096})
	r.Emit(Event{Phase: PhasePublish, TS: base, Counter: 1, Bytes: 4096})
	r.Emit(Event{Phase: PhaseObsolete, TS: base, Counter: 2})
	r.Emit(Event{Phase: PhaseCASRetry, TS: base, Counter: 3})
	r.Emit(Event{Phase: PhaseIORetry, TS: base, Dur: 500, Attempt: 1})
	r.Emit(Event{Phase: PhaseFault, TS: base, Attempt: 1})
	r.Emit(Event{Phase: PhaseFaultInjected, TS: base, Value: 0})

	s := r.Snapshot()
	if s.Published != 1 || s.Obsolete != 1 || s.CASRetries != 1 || s.IORetries != 1 {
		t.Fatalf("outcome counters wrong: %+v", s)
	}
	if s.TransientFaults != 1 || s.InjectedFaults != 1 {
		t.Fatalf("fault counters wrong: %+v", s)
	}
	if s.SlotWaits != 1 {
		t.Fatalf("SlotWaits = %d, want 1 (only the Value=1 event counts)", s.SlotWaits)
	}
	if s.BytesWritten != 4096 {
		t.Fatalf("BytesWritten = %d", s.BytesWritten)
	}
	save := s.Phase(PhaseSave)
	if save.Count != 1 || save.P99 < int64ToDur(900_000) {
		t.Fatalf("save phase stats wrong: %+v", save)
	}
	if sw := s.Phase(PhaseSlotWait); sw.Count != 2 {
		t.Fatalf("slot-wait count = %d, want 2 (all saves observed)", sw.Count)
	}
	// Snapshot must not drain the ring.
	if evs := r.TakeEvents(); len(evs) != 9 {
		t.Fatalf("TakeEvents after Snapshot returned %d events, want 9", len(evs))
	}
}

func int64ToDur(ns int64) time.Duration { return time.Duration(ns) }

// TestWriteTrace checks the exported JSON parses and carries the span
// structure Perfetto needs.
func TestWriteTrace(t *testing.T) {
	r := NewRecorder(1024)
	base := time.Now().UnixNano()
	r.Emit(Event{Phase: PhaseSlotWait, TS: base, Dur: 100, Counter: 1, Slot: 0, Writer: -1, Rank: -1})
	r.Emit(Event{Phase: PhaseCopy, TS: base + 100, Dur: 2000, Counter: 1, Slot: 0, Bytes: 1024, Writer: -1, Rank: -1})
	r.Emit(Event{Phase: PhasePersist, TS: base + 2100, Dur: 3000, Counter: 1, Slot: 0, Writer: 1, Bytes: 1024, Rank: -1})
	r.Emit(Event{Phase: PhaseBarrier, TS: base + 5100, Dur: 400, Counter: 1, Slot: 0, Writer: -1, Rank: -1})
	r.Emit(Event{Phase: PhasePublish, TS: base + 5500, Counter: 1, Slot: 0, Bytes: 1024, Writer: -1, Rank: -1})
	r.Emit(Event{Phase: PhaseSave, TS: base, Dur: 5500, Counter: 1, Slot: 0, Bytes: 1024, Writer: -1, Rank: -1})

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			PID  int     `json:"pid"`
			TID  int64   `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	byName := map[string]string{}
	for _, e := range doc.TraceEvents {
		byName[e.Name] = e.Ph
	}
	for name, wantPh := range map[string]string{
		"save": "X", "slot-wait": "X", "copy": "X", "persist": "X",
		"barrier": "X", "publish": "i",
	} {
		if byName[name] != wantPh {
			t.Fatalf("trace missing %q as ph=%q (got %q); names: %v", name, wantPh, byName[name], byName)
		}
	}
	if _, ok := byName["thread_name"]; !ok {
		t.Fatal("trace missing thread_name metadata")
	}
	// WriteTrace is non-destructive: the events stay buffered for other
	// consumers (dashboard, black-box flusher).
	if evs := r.TakeEvents(); len(evs) != 6 {
		t.Fatalf("WriteTrace consumed events: %d left buffered, want 6", len(evs))
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRecorder(256)
	for i := 0; i < 100; i++ {
		r.Emit(Event{Phase: PhaseSave, TS: int64(i), Dur: int64(i+1) * 10_000, Counter: uint64(i)})
		r.Emit(Event{Phase: PhaseSlotWait, TS: int64(i), Dur: int64(i) * 100, Value: 1})
		r.Emit(Event{Phase: PhasePublish, TS: int64(i), Counter: uint64(i), Bytes: 100})
	}
	srv := httptest.NewServer(r.MetricsHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	for _, want := range []string{
		`pccheck_save_seconds{quantile="0.5"}`,
		`pccheck_save_seconds{quantile="0.95"}`,
		`pccheck_save_seconds{quantile="0.99"}`,
		`pccheck_slot_wait_seconds{quantile="0.99"}`,
		"pccheck_published_total 100",
		"pccheck_slot_waits_total 100",
		"pccheck_bytes_written_total 10000",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestServe(t *testing.T) {
	r := NewRecorder(256)
	r.Emit(Event{Phase: PhaseSave, Dur: 1000})
	srv, addr, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/vars"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if path == "/debug/vars" && !strings.Contains(body, "pccheck") {
			t.Fatalf("expvar output missing pccheck var:\n%s", body)
		}
	}
}

// TestEmitAllocFree proves the hot path allocates nothing.
func TestEmitAllocFree(t *testing.T) {
	r := NewRecorder(1024)
	ev := Event{Phase: PhasePersist, TS: 1, Dur: 100, Counter: 7, Slot: 1, Writer: 2, Bytes: 4096}
	allocs := testing.AllocsPerRun(1000, func() { r.Emit(ev) })
	if allocs != 0 {
		t.Fatalf("Emit allocates %.1f times per call, want 0", allocs)
	}
}

// TestRecorderConcurrentEmitSnapshot is the recorder-level race test:
// emitters, snapshotters, metrics scrapes and trace drains all at once.
func TestRecorderConcurrentEmitSnapshot(t *testing.T) {
	r := NewRecorder(512)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 20000; i++ {
				r.Emit(Event{
					Phase:   Phase(rng.Intn(int(PhaseCount))),
					TS:      int64(i),
					Dur:     int64(rng.Intn(1000)),
					Counter: uint64(i),
				})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.TakeEvents()
			}
		}
	}()
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestSnapshotEventsTwoConsumers is the regression for the old
// drain-on-read API: with SnapshotEvents, two concurrent consumers
// (think dashboard poll + black-box flusher) must both observe a given
// event instead of one stealing it from the other.
func TestSnapshotEventsTwoConsumers(t *testing.T) {
	r := NewRecorder(256)
	marker := Event{Phase: PhasePublish, TS: 42, Counter: 7, Bytes: 512, Slot: -1, Writer: -1, Rank: -1}
	r.Emit(marker)

	sees := func() bool {
		for _, ev := range r.SnapshotEvents() {
			if ev == marker {
				return true
			}
		}
		return false
	}
	var wg sync.WaitGroup
	saw := make([]bool, 2)
	for c := range saw {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			saw[c] = sees()
		}(c)
	}
	wg.Wait()
	for c, ok := range saw {
		if !ok {
			t.Fatalf("consumer %d did not observe the event — snapshot stole it", c)
		}
	}
	// And a destructive drain afterwards still finds it once.
	if evs := r.TakeEvents(); len(evs) != 1 || evs[0] != marker {
		t.Fatalf("TakeEvents after snapshots = %v, want the single marker", evs)
	}
}

// TestSnapshotEventsUnderEmitPressure: snapshots taken while emitters
// overwrite the ring return only intact events, in FIFO order.
func TestSnapshotEventsUnderEmitPressure(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
				r.Emit(Event{Phase: PhaseSave, TS: int64(i), Counter: uint64(i)})
			}
		}
	}()
	for i := 0; i < 2000; i++ {
		evs := r.SnapshotEvents()
		for j := 1; j < len(evs); j++ {
			if evs[j].TS < evs[j-1].TS {
				t.Fatalf("snapshot out of order at %d: %d after %d", j, evs[j].TS, evs[j-1].TS)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestEventsEndpoint: /events serves a non-destructive JSON tail.
func TestEventsEndpoint(t *testing.T) {
	r := NewRecorder(256)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Phase: PhasePublish, TS: int64(i), Counter: uint64(i + 1), Bytes: 64})
	}
	srv := httptest.NewServer(r.eventsHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "?n=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got []eventJSON
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatalf("events JSON does not parse: %v", err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d events, want the 3-event tail", len(got))
	}
	if got[2].Counter != 10 || got[2].Phase != PhasePublish.String() {
		t.Fatalf("tail end = %+v, want counter 10 publish", got[2])
	}
	if n := len(r.TakeEvents()); n != 10 {
		t.Fatalf("/events consumed ring events: %d left, want 10", n)
	}
}
