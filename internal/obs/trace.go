package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the drained flight-recorder events become a
// JSON document loadable in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing. Spans are "X" complete events, instants are "i".
//
// Track layout (all under pid 1 "pccheck"):
//
//   - each save gets its own track ("save <counter>") carrying its
//     end-to-end span, slot wait, header/sync/barrier persists and the
//     publish/obsolete/cas-retry instants;
//   - each slot gets a staging track ("slot <s> stage") with the chunk
//     copy and chunk-wait spans, plus one track per writer lane
//     ("slot <s> writer <w>") with the per-chunk persist spans — a slot is
//     owned by exactly one save at a time, so these never overlap;
//   - retries and faults share a "faults+retries" track, the training
//     loop's snapshot/retune events a "loop" track, each distributed
//     rank an "agree rank <r>" track, and rank 0's per-round gate
//     records (which rank held the round open) an "agree gate" track.
const (
	tidFaults  = 2
	tidLoop    = 3
	tidGate    = 4
	tidDecide  = 5
	tidCrash   = 90
	tidTierLo  = 6    // + tier index (Slot)
	tidRankLo  = 100  // + rank
	tidSlotLo  = 1000 // + slot*slotLaneStride (+ 1 + writer for writer lanes)
	tidSaveLo  = 1 << 20
	slotStride = 100
)

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int64          `json:"tid"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// trackOf assigns an event to its track and human-readable track name.
func trackOf(ev Event) (int64, string) {
	switch ev.Phase {
	case PhaseCopy, PhaseChunkWait:
		return tidSlotLo + int64(ev.Slot)*slotStride, fmt.Sprintf("slot %d stage", ev.Slot)
	case PhasePersist:
		return tidSlotLo + int64(ev.Slot)*slotStride + 1 + int64(ev.Writer),
			fmt.Sprintf("slot %d writer %d", ev.Slot, ev.Writer)
	case PhaseIORetry, PhaseFault, PhaseFaultInjected:
		return tidFaults, "faults+retries"
	case PhaseSnapshot, PhaseRetune:
		return tidLoop, "loop"
	case PhaseAgree:
		return tidRankLo + int64(ev.Rank), fmt.Sprintf("agree rank %d", ev.Rank)
	case PhaseAgreeGate:
		return tidGate, "agree gate"
	case PhaseDecision:
		return tidDecide, "decisions"
	case PhaseTierDrain, PhaseTierError, PhaseTierResync:
		return tidTierLo + int64(ev.Slot), fmt.Sprintf("tier %d drain", ev.Slot)
	case PhaseCrashMark:
		return tidCrash, "crash"
	default:
		return tidSaveLo + int64(ev.Counter), fmt.Sprintf("save %d", ev.Counter)
	}
}

// traceArgs builds the args payload, omitting fields the phase leaves
// unset so the Perfetto detail pane stays readable.
func traceArgs(ev Event) map[string]any {
	args := make(map[string]any, 6)
	if ev.Counter != 0 {
		args["counter"] = ev.Counter
	}
	if ev.Bytes != 0 {
		args["bytes"] = ev.Bytes
	}
	if ev.Value != 0 {
		args["value"] = ev.Value
	}
	if ev.Slot >= 0 {
		args["slot"] = ev.Slot
	}
	if ev.Writer >= 0 {
		args["writer"] = ev.Writer
	}
	if ev.Rank >= 0 {
		args["rank"] = ev.Rank
	}
	if ev.Attempt != 0 {
		args["attempt"] = ev.Attempt
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// WriteTraceEvents renders events as Chrome trace-event JSON. Timestamps
// are rebased to the earliest event so Perfetto opens at t=0.
func WriteTraceEvents(w io.Writer, events []Event) error {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].TS < sorted[j].TS })

	var t0 int64
	if len(sorted) > 0 {
		t0 = sorted[0].TS
	}
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(sorted)+8),
		DisplayTimeUnit: "ms",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "pccheck"},
	})
	named := make(map[int64]bool)
	for _, ev := range sorted {
		tid, trackName := trackOf(ev)
		if !named[tid] {
			named[tid] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": trackName},
			})
		}
		ce := chromeEvent{
			Name: ev.Phase.String(),
			Cat:  "checkpoint",
			PID:  1,
			TID:  tid,
			TS:   float64(ev.TS-t0) / 1e3, // µs
			Args: traceArgs(ev),
		}
		if ev.Phase.IsSpan() {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		} else {
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteTrace snapshots the recorder's ring (see SnapshotEvents) and
// writes the events as Chrome trace-event JSON. The ring is left intact,
// so trace export does not steal events from other consumers such as the
// black-box flusher.
func (r *Recorder) WriteTrace(w io.Writer) error {
	return WriteTraceEvents(w, r.SnapshotEvents())
}
