package decision

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"pccheck/internal/obs"
)

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < KindCount; k++ {
		got, ok := KindFromString(k.String())
		if !ok || got != k {
			t.Errorf("KindFromString(%q) = %v, %v", k.String(), got, ok)
		}
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatalf("marshal %v: %v", k, err)
		}
		var back Kind
		if err := json.Unmarshal(b, &back); err != nil || back != k {
			t.Errorf("unmarshal %s = %v, %v", b, back, err)
		}
	}
	if _, ok := KindFromString("bogus"); ok {
		t.Error("KindFromString accepted an unknown name")
	}
	var k Kind
	if err := json.Unmarshal([]byte(`7`), &k); err == nil {
		t.Error("numeric kind accepted")
	}
}

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Emit(obs.Event{Phase: obs.PhaseSave})
	r.RecordRetune(Inputs{}, Alternative{}, nil)
	r.RecordScored(KindRetry, Outcome{})
	r.OpenDegraded(1, Inputs{}, Alternative{}, nil)
	r.ResolveDegraded(1, 0.1, "x")
	r.LedgerBlock(1, 1, 10)
	r.Finalize()
	if r.Len() != 0 || r.Decisions() != nil || r.FailureRate() != 0 || r.Next() != nil {
		t.Error("nil recorder leaked state")
	}
	if s := r.Summary(); s.Total != 0 {
		t.Errorf("nil Summary.Total = %d", s.Total)
	}
}

func TestRecordScoredSanitizes(t *testing.T) {
	r := New(Config{}, nil)
	r.RecordScored(KindRetry, Outcome{Measured: math.NaN(), Regret: math.Inf(1)})
	r.RecordScored(KindRetry, Outcome{Measured: -3, Regret: -1})
	for _, d := range r.Decisions() {
		if d.MeasuredCost != 0 || d.Regret != 0 {
			t.Errorf("seq %d not sanitized: measured %v regret %v", d.Seq, d.MeasuredCost, d.Regret)
		}
		if !d.Scored {
			t.Errorf("seq %d not marked scored", d.Seq)
		}
	}
}

// TestRetuneLedgerJoin walks the whole retune-scoring path: the decision
// pends, the next completed ledger block joins it, calibration rescales the
// rejected candidates, and the infeasible one never wins the regret
// comparison.
func TestRetuneLedgerJoin(t *testing.T) {
	r := New(Config{FailureRate: 1e-12}, nil) // λ≈0: staleness drops out
	chosen := Alternative{Action: "f=2", OverheadSeconds: 0.0004, Feasible: true}
	rejected := []Alternative{
		{Action: "f=4", PredictedCost: 0.0002, OverheadSeconds: 0.0002, Feasible: true},
		{Action: "f=8", PredictedCost: 0.00002, OverheadSeconds: 0.00002, Feasible: false},
	}
	r.RecordRetune(Inputs{TwSeconds: 0.02, IterSeconds: 0.001, Q: 1.05, N: 2}, chosen, rejected)

	if got := r.Summary().Pending; got != 1 {
		t.Fatalf("pending = %d before the block, want 1", got)
	}
	if r.Len() != 0 {
		t.Fatalf("retune pushed before its measurement: len %d", r.Len())
	}

	// Block: mean 1.2 ms over a 1 ms baseline ⇒ measured overhead 0.2 ms.
	// Calibration = 0.0002/0.0004 = 0.5; f=4's estimate 0.5·0.0002 = 0.1 ms
	// beats the measured 0.2 ms; the infeasible f=8 would be cheaper still
	// but must not win.
	r.LedgerBlock(0.0012, 0.001, 32)

	ds := r.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	d := ds[0]
	if !d.Scored || d.Outcome != "ledger-join" {
		t.Fatalf("scored %v outcome %q, want ledger-join", d.Scored, d.Outcome)
	}
	if d.BestAlt != "f=4" {
		t.Fatalf("best alternative %q, want f=4 (f=8 is infeasible)", d.BestAlt)
	}
	const eps = 1e-9
	if math.Abs(d.MeasuredCost-0.0002) > eps {
		t.Errorf("measured cost %v, want 0.0002", d.MeasuredCost)
	}
	if math.Abs(d.Regret-0.0001) > eps {
		t.Errorf("regret %v, want 0.0001 (measured 0.0002 − calibrated f=4 0.0001)", d.Regret)
	}
	if got := r.Summary().Pending; got != 0 {
		t.Errorf("pending = %d after the block, want 0", got)
	}
}

// TestRetuneCalibrationClamp pins the [0.25, 4] clamp on the
// measured/predicted ratio: a wildly over-optimistic model must not inflate
// alternative estimates beyond 4× prediction.
func TestRetuneCalibrationClamp(t *testing.T) {
	r := New(Config{FailureRate: 1e-12}, nil)
	chosen := Alternative{Action: "f=2", OverheadSeconds: 1e-6, Feasible: true}
	rejected := []Alternative{{Action: "f=3", OverheadSeconds: 0.001, Feasible: true}}
	r.RecordRetune(Inputs{}, chosen, rejected)
	// measuredOver = 0.01, raw calibration 0.01/1e-6 = 10000 → clamped to 4:
	// f=3's estimate is 4·0.001 = 0.004, regret 0.01 − 0.004 = 0.006.
	r.LedgerBlock(0.011, 0.001, 32)
	d := r.Decisions()[0]
	if math.Abs(d.Regret-0.006) > 1e-9 {
		t.Errorf("regret %v, want 0.006 under the ×4 calibration clamp", d.Regret)
	}
}

func TestRetuneNoBaseline(t *testing.T) {
	r := New(Config{}, nil)
	r.RecordRetune(Inputs{}, Alternative{Action: "f=2", OverheadSeconds: 0.001, Feasible: true},
		[]Alternative{{Action: "f=1", OverheadSeconds: 0.002, Feasible: true}})
	r.LedgerBlock(0.0012, 0, 32) // ledger has not learned a baseline yet
	d := r.Decisions()[0]
	if d.Outcome != "no-baseline" || !d.Scored {
		t.Errorf("outcome %q scored %v, want no-baseline + scored", d.Outcome, d.Scored)
	}
	if d.Regret != 0 {
		t.Errorf("regret %v without a baseline, want 0", d.Regret)
	}
}

func TestFinalizeDrainJoin(t *testing.T) {
	r := New(Config{}, nil)
	alt := Alternative{Action: "f=2", OverheadSeconds: 0.001, Feasible: true}

	// No block ever completed: Finalize pushes unscored.
	r.RecordRetune(Inputs{}, alt, nil)
	r.Finalize()
	if d := r.Decisions()[0]; d.Scored || d.Outcome != "no-measurement" {
		t.Fatalf("no-block finalize: scored %v outcome %q", d.Scored, d.Outcome)
	}

	// After a block has been seen, stragglers drain-join against it.
	r.LedgerBlock(0.0012, 0.001, 32)
	r.RecordRetune(Inputs{}, alt, nil)
	r.Finalize()
	ds := r.Decisions()
	if d := ds[len(ds)-1]; !d.Scored || d.Outcome != "drain-join" {
		t.Fatalf("drain-join finalize: scored %v outcome %q", d.Scored, d.Outcome)
	}

	// Abandoned degraded stalls close unresolved.
	r.OpenDegraded(7, Inputs{DeadRanks: 1}, Alternative{Action: "stall"}, nil)
	r.Finalize()
	ds = r.Decisions()
	if d := ds[len(ds)-1]; d.Kind != KindDegraded || d.Scored || d.Outcome != "unresolved" {
		t.Fatalf("abandoned stall: kind %v scored %v outcome %q", d.Kind, d.Scored, d.Outcome)
	}
}

func TestDegradedOpenResolve(t *testing.T) {
	r := New(Config{}, nil)
	in := Inputs{DeadRanks: 2, N: 4}
	r.OpenDegraded(3, in, Alternative{Action: "stall", Feasible: true},
		[]Alternative{{Action: "exclude-dead", Feasible: true}})
	r.OpenDegraded(3, in, Alternative{Action: "stall"}, nil) // idempotent
	if got := r.Summary().Pending; got != 1 {
		t.Fatalf("pending = %d after double open, want 1", got)
	}
	r.ResolveDegraded(3, 0.25, "stalled-then-committed")
	r.ResolveDegraded(3, 0.25, "stalled-then-committed") // second resolve is a no-op
	ds := r.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.Counter != 3 || !d.Scored || d.Regret != 0.25 || d.BestAlt != "exclude-dead" {
		t.Errorf("resolved stall: counter %d scored %v regret %v best %q",
			d.Counter, d.Scored, d.Regret, d.BestAlt)
	}
}

func TestRingEviction(t *testing.T) {
	r := New(Config{Capacity: 4}, nil)
	for i := 0; i < 10; i++ {
		r.RecordScored(KindRetry, Outcome{Measured: float64(i), Outcome: "exhausted"})
	}
	ds := r.Decisions()
	if len(ds) != 4 {
		t.Fatalf("retained %d, want capacity 4", len(ds))
	}
	for i, d := range ds {
		if want := uint64(7 + i); d.Seq != want {
			t.Errorf("ds[%d].Seq = %d, want %d (oldest-first after eviction)", i, d.Seq, want)
		}
	}
	if sum := r.Summary(); sum.Dropped != 6 || sum.Total != 10 {
		t.Errorf("dropped %d total %d, want 6 and 10", sum.Dropped, sum.Total)
	}
}

func TestTopKTrimsCheapestFirst(t *testing.T) {
	r := New(Config{TopK: 2}, nil)
	r.RecordScored(KindTune, Outcome{Rejected: []Alternative{
		{Action: "N=1", PredictedCost: 0.5},
		{Action: "N=2", PredictedCost: 0.1},
		{Action: "N=3", PredictedCost: 0.3},
		{Action: "N=4", PredictedCost: 0.2},
	}})
	d := r.Decisions()[0]
	if len(d.Rejected) != 2 || d.Rejected[0].Action != "N=2" || d.Rejected[1].Action != "N=4" {
		t.Errorf("trimmed alternatives = %+v, want the two cheapest in order", d.Rejected)
	}
}

func TestDecisionMarkersEmitted(t *testing.T) {
	rec := obs.NewRecorder(64)
	r := New(Config{}, rec)
	r.RecordScored(KindSlotAdmission, Outcome{Counter: 9, Rank: 2})
	r.RecordRetune(Inputs{}, Alternative{Action: "f=2"}, nil) // marker at record time, while pending
	evs := rec.TakeEvents()
	var marks []obs.Event
	for _, ev := range evs {
		if ev.Phase == obs.PhaseDecision {
			marks = append(marks, ev)
		}
	}
	if len(marks) != 2 {
		t.Fatalf("PhaseDecision markers = %d, want 2", len(marks))
	}
	if marks[0].Value != int64(KindSlotAdmission) || marks[0].Rank != 2 {
		t.Errorf("marker 0 = %+v, want slot-admission kind, rank 2", marks[0])
	}
	if marks[1].Counter != 2 {
		t.Errorf("marker 1 counter = %d, want seq 2", marks[1].Counter)
	}
}

func TestFindWalksChain(t *testing.T) {
	rec := obs.NewRecorder(64)
	dec := New(Config{}, rec)
	led := obs.NewLedger(obs.LedgerConfig{SlowdownBudget: 1.05}, dec)
	if got := Find(led); got != dec {
		t.Errorf("Find(ledger) = %p, want the chained recorder %p", got, dec)
	}
	if got := Find(rec); got != nil {
		t.Errorf("Find(recorder) = %p, want nil", got)
	}
	if got := Find(nil); got != nil {
		t.Errorf("Find(nil) = %p, want nil", got)
	}
}

// TestLedgerFeedsBlocks is the integration seam: a Ledger constructed over
// the recorder discovers it as its BlockSink and joins pending retunes
// without any explicit wiring.
func TestLedgerFeedsBlocks(t *testing.T) {
	dec := New(Config{}, obs.NewRecorder(64))
	led := obs.NewLedger(obs.LedgerConfig{
		SlowdownBudget:   1.05,
		BaselineIterTime: time.Millisecond,
		Window:           8,
	}, dec)
	dec.RecordRetune(Inputs{TwSeconds: 0.01, IterSeconds: 0.001},
		Alternative{Action: "f=2", OverheadSeconds: 0.0001, Feasible: true},
		[]Alternative{{Action: "f=3", OverheadSeconds: 0.00005, Feasible: true}})
	for i := 0; i < 8; i++ {
		led.IterDone(1200*time.Microsecond, false)
	}
	ds := dec.Decisions()
	if len(ds) != 1 || !ds[0].Scored || ds[0].Outcome != "ledger-join" {
		t.Fatalf("ledger block did not score the retune: %+v", ds)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(Config{}, nil)
	r.RecordScored(KindSlotAdmission, Outcome{
		Inputs:   Inputs{N: 2, SlotsBusy: 2, PayloadBytes: 1 << 20},
		Chosen:   Alternative{Action: "wait-for-slot", PredictedCost: 0.003, Feasible: true},
		Rejected: []Alternative{{Action: "skip-save", Feasible: true}},
		Measured: 0.003, Regret: 0.003, Outcome: "admitted", Counter: 5, Rank: 1,
	})
	r.RecordScored(KindRetry, Outcome{Measured: 0.01, Regret: 0.01, Outcome: "exhausted"})

	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Decisions()
	if len(back) != len(want) {
		t.Fatalf("round-trip %d decisions, want %d", len(back), len(want))
	}
	for i := range want {
		a, _ := json.Marshal(want[i])
		b, _ := json.Marshal(back[i])
		if string(a) != string(b) {
			t.Errorf("decision %d round-trip mismatch:\n %s\n %s", i, a, b)
		}
	}

	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestSummarizeAndCoverage(t *testing.T) {
	r := New(Config{}, nil)
	r.RecordScored(KindRetry, Outcome{Measured: 0.01, Regret: 0.01, Outcome: "exhausted"})
	r.RecordRetune(Inputs{}, Alternative{Action: "f=2"}, nil)
	r.Finalize() // no block: pushed unscored
	sum := Summarize(r.Decisions())
	if sum.Total != 2 || sum.Scored != 1 {
		t.Fatalf("total %d scored %d, want 2 and 1", sum.Total, sum.Scored)
	}
	if math.Abs(sum.Coverage-0.5) > 1e-9 {
		t.Errorf("coverage %v, want 0.5", sum.Coverage)
	}
	if sum.RegretMax != 0.01 || math.Abs(sum.RegretMean-0.01) > 1e-9 {
		t.Errorf("regret mean %v max %v, want 0.01 both (over scored only)", sum.RegretMean, sum.RegretMax)
	}
	if empty := Summarize(nil); empty.Coverage != 1 {
		t.Errorf("empty-log coverage %v, want 1", empty.Coverage)
	}
}

func TestWriteMetricsFamilies(t *testing.T) {
	r := New(Config{}, nil)
	r.RecordScored(KindRetry, Outcome{Measured: 0.01, Regret: 0.01, Outcome: "exhausted"})
	var buf bytes.Buffer
	r.WriteMetrics(&buf)
	out := buf.String()
	for _, want := range []string{
		`pccheck_decision_total{kind="retry"} 1`,
		`pccheck_decision_total{kind="retune"} 0`, // every kind always present
		`pccheck_decision_scored_total{kind="retry"} 1`,
		`pccheck_decision_regret_seconds_total{kind="retry"} 0.01`,
		"pccheck_decision_pending 0",
		"pccheck_decision_dropped_total 0",
		"pccheck_regret_seconds_mean 0.01",
		"pccheck_regret_seconds_max 0.01",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestFormatTableWorstFirst(t *testing.T) {
	r := New(Config{}, nil)
	r.RecordScored(KindRetry, Outcome{Measured: 0.01, Regret: 0.01, Outcome: "exhausted"})
	r.RecordScored(KindSlotAdmission, Outcome{Measured: 0.5, Regret: 0.5, Outcome: "admitted"})
	var buf bytes.Buffer
	FormatTable(&buf, r.Decisions(), 0)
	out := buf.String()
	if !strings.Contains(out, "slot-admission") || !strings.Contains(out, "retry") {
		t.Fatalf("table missing kinds:\n%s", out)
	}
	if strings.Index(out, "slot-admission") > strings.Index(out, "retry") {
		t.Errorf("table not worst-regret-first:\n%s", out)
	}
}

func TestRetuneCandidates(t *testing.T) {
	chosen, alts := RetuneCandidates(0.02, 0.001, 1.05, 2, 3, 5, 1, 100, 1.0/300)
	if chosen.Action != "f=3" {
		t.Errorf("chosen action %q, want f=3", chosen.Action)
	}
	if len(alts) < 2 {
		t.Fatalf("rejected candidates = %d, want ≥ 2", len(alts))
	}
	seen := map[string]bool{chosen.Action: true}
	for _, a := range alts {
		if seen[a.Action] {
			t.Errorf("duplicate candidate %q", a.Action)
		}
		seen[a.Action] = true
		if a.PredictedCost < 0 || math.IsNaN(a.PredictedCost) {
			t.Errorf("candidate %q has bad cost %v", a.Action, a.PredictedCost)
		}
	}
	if !seen["f=5"] {
		t.Error("previous interval f=5 not among the candidates")
	}

	// With a tight budget the small intervals must be marked infeasible:
	// f=1 at N=1 with tw ≫ t means slowdown well above q.
	_, tight := RetuneCandidates(0.5, 0.001, 1.01, 1, 50, 50, 1, 1000, 0)
	infeasible := false
	for _, a := range tight {
		if !a.Feasible {
			infeasible = true
		}
	}
	if !infeasible {
		t.Error("no infeasible candidate under a tight q with a huge Tw")
	}

	// The clamp range can collapse candidates; the fill loop must still
	// produce at least two distinct rejected intervals when room exists.
	_, narrow := RetuneCandidates(0.02, 0.001, 1.05, 2, 1, 1, 1, 10, 0)
	if len(narrow) < 2 {
		t.Errorf("clamped-at-min candidates = %d, want ≥ 2", len(narrow))
	}
}

// TestEmitAddsNoAllocations: the decision recorder's event path is a pure
// forward; chaining it must not add per-event heap allocations.
func TestEmitAddsNoAllocations(t *testing.T) {
	rec := obs.NewRecorder(1 << 10)
	dec := New(Config{}, rec)
	ev := obs.Event{TS: 1, Phase: obs.PhasePersist, Dur: 100, Slot: -1, Writer: -1, Rank: -1}
	if n := testing.AllocsPerRun(100, func() { dec.Emit(ev) }); n > 0 {
		t.Errorf("Emit allocates %v per event, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(100, func() { nilRec.Emit(ev) }); n > 0 {
		t.Errorf("nil Emit allocates %v per event, want 0", n)
	}
}
