package decision

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"pccheck/internal/perfmodel"
	"pccheck/internal/sim"
	"pccheck/internal/workload"
)

// ReplayOutcome is one candidate interval re-run through the discrete-event
// simulator (internal/sim) on a synthetic platform reconstructed from the
// decision's measured inputs.
type ReplayOutcome struct {
	// Action is the candidate ("f=3"); Chosen marks the action taken.
	Action string `json:"action"`
	Chosen bool   `json:"chosen"`
	// Interval is the candidate checkpoint interval in iterations.
	Interval int `json:"interval"`
	// SimSlowdown is the simulated end-to-end slowdown (≥ 1).
	SimSlowdown float64 `json:"sim_slowdown"`
	// SimStallSeconds is total simulated time training blocked on
	// checkpointing.
	SimStallSeconds float64 `json:"sim_stall_seconds"`
	// MeanLagIters is the simulated expected lost work (iterations) at a
	// uniformly random failure instant.
	MeanLagIters float64 `json:"mean_lag_iters"`
}

// ReplayRetune re-runs a recorded retune decision's candidate set through
// internal/sim: the measured (Tw, t, N) inputs are inverted into a
// synthetic platform whose storage bandwidth reproduces the observed write
// time, then each candidate interval is simulated end to end. Where the
// regret join scores decisions against one measured ledger block, the
// replay bounds what each alternative would have yielded over a whole run —
// including the checkpoint/iteration interleaving effects the closed-form
// model ignores. Outcomes are sorted by interval; the analytic predictions
// stay attached to the decision for comparison.
func ReplayRetune(d Decision, writers int) ([]ReplayOutcome, error) {
	if d.Kind != KindRetune {
		return nil, fmt.Errorf("decision: replay wants a retune decision, got %s", d.Kind)
	}
	in := d.Inputs
	if in.TwSeconds <= 0 || in.IterSeconds <= 0 {
		return nil, fmt.Errorf("decision: seq %d has no measured (tw, iter) inputs to replay", d.Seq)
	}
	n := in.N
	if n < 1 {
		n = 1
	}
	payload := in.PayloadBytes
	if payload <= 0 {
		payload = 64 << 20
	}
	if writers <= 0 {
		writers = 3
	}
	// Invert the measurement: a bandwidth at which N concurrent writers
	// need exactly the observed TwSeconds per checkpoint.
	bw := float64(payload) * float64(n) / in.TwSeconds
	model := workload.Model{
		Name:            "decision-replay",
		CheckpointBytes: payload,
		IterTime:        time.Duration(in.IterSeconds * float64(time.Second)),
		Nodes:           1,
	}
	plat := workload.Platform{
		Name:             "decision-replay",
		PCIeBW:           64 << 30, // snapshot copy effectively free, as measured tw already excludes it
		StorageWriteBW:   bw,
		StorageReadBW:    bw,
		PerThreadWriteBW: bw,
		IterScale:        1,
	}
	cands := make(map[string]bool, 1+len(d.Rejected)) // action → chosen
	cands[d.Chosen.Action] = true
	for _, a := range d.Rejected {
		if _, dup := cands[a.Action]; !dup {
			cands[a.Action] = false
		}
	}
	out := make([]ReplayOutcome, 0, len(cands))
	for action, chosen := range cands {
		f, err := parseInterval(action)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: plat,
			Interval: f, Concurrent: n, Writers: writers,
		})
		if err != nil {
			return nil, fmt.Errorf("decision: replay %s: %w", action, err)
		}
		out = append(out, ReplayOutcome{
			Action: action, Chosen: chosen, Interval: f,
			SimSlowdown:     res.Slowdown,
			SimStallSeconds: res.StallSeconds,
			MeanLagIters:    res.MeanLagIters,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Interval < out[j].Interval })
	return out, nil
}

// parseInterval extracts f from a retune candidate action like "f=4".
func parseInterval(action string) (int, error) {
	s, ok := strings.CutPrefix(action, "f=")
	if !ok {
		return 0, fmt.Errorf("decision: cannot replay action %q (want f=<n>)", action)
	}
	f, err := strconv.Atoi(s)
	if err != nil || f < 1 {
		return 0, fmt.Errorf("decision: cannot replay action %q (want f=<n>)", action)
	}
	return f, nil
}
