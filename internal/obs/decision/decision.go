// Package decision is PCcheck's policy decision trace: a recorder that
// captures every tuning and coordination decision the system makes — the
// chosen action, the measured inputs it was derived from, and the top-K
// alternatives the policy rejected, each with the cost the analytic model
// (internal/perfmodel, Eq. (3) of §3.4) predicted for it — and then closes
// the loop by scoring each decision with measured regret.
//
// Where the flight recorder answers "what happened" and the goodput ledger
// answers "what did it cost", the decision trace answers "why was this
// chosen and what would the alternative have cost". Regret is the currency:
// for a retune decision, the goodput ledger's next completed slowdown block
// measures the overhead the chosen interval actually produced; the model's
// predictions for the rejected intervals are calibrated against that
// measurement, and regret is how much cheaper the best rejected alternative
// would have been (0 when the chosen action was best). "The retune picked
// f=3; f=4's predicted stall was 18% lower and the measured block confirms
// it" is one scored decision record.
//
// The recorder chains in front of the flight recorder exactly like the
// ledger: Ledger → decision.Recorder → Recorder. Emit forwards every event
// untouched (no locks, no allocations), so the engine's zero-allocation
// save path survives the extra link; a nil *Recorder is inert and every
// engine probe is a single branch. Recording a decision additionally emits
// one PhaseDecision instant downstream so decisions appear as markers on
// the Perfetto "decisions" track.
//
// Decision kinds:
//
//   - retune: AdaptiveLoop re-derived f from Eq. (3); scored against the
//     ledger's next completed slowdown block (window join).
//   - tune: the §3.4 N* search (tuner.Profile / tuner.Analyze); every
//     candidate N's Tw/N is a scored alternative, and the 5%
//     smaller-N-on-ties preference shows up as deliberate regret.
//   - slot-admission: a save had to wait for a free slot (Listing 1's deq
//     loop); regret is the measured wait that one more slot would have
//     absorbed.
//   - retry: a persist-path transient fault sequence; regret is backoff
//     burned on a save that failed anyway (0 when the retry recovered it).
//   - degraded-commit: the coordinator's Stall-vs-ExcludeDead choice when a
//     round was blocked solely by dead ranks; a Stall decision's regret is
//     the measured stall ExcludeDead would have avoided.
package decision

import (
	"fmt"
	"math"
	"sync"
	"time"

	"pccheck/internal/obs"
	"pccheck/internal/perfmodel"
)

// Kind identifies which policy made a decision.
type Kind int32

const (
	// KindRetune is AdaptiveLoop.retuneLocked re-deriving f* (Eq. 3).
	KindRetune Kind = iota
	// KindTune is the §3.4 N* search in tuner.Profile / tuner.Analyze.
	KindTune
	// KindSlotAdmission is a save admitted after waiting for a free slot.
	KindSlotAdmission
	// KindRetry is a persist-path transient-fault retry/backoff sequence.
	KindRetry
	// KindDegraded is the coordinator's dead-rank commit policy acting.
	KindDegraded
	// KindRepair is the scrubber choosing how to handle a corrupt copy:
	// rewrite from a healthy tier/replica, resync the whole tier, or
	// quarantine when no healthy source exists.
	KindRepair

	// KindCount is the number of defined kinds.
	KindCount
)

var kindNames = [KindCount]string{
	"retune", "tune", "slot-admission", "retry", "degraded-commit",
	"repair",
}

// String returns the kind's canonical hyphenated name.
func (k Kind) String() string {
	if k >= 0 && k < KindCount {
		return kindNames[k]
	}
	return "kind?"
}

// KindFromString inverts String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for k := Kind(0); k < KindCount; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON renders the kind as its name so decision logs are readable
// without the Go enum.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the name form (and is what ReadJSONL relies on).
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("decision: kind must be a string, got %s", b)
	}
	got, ok := KindFromString(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("decision: unknown kind %s", b)
	}
	*k = got
	return nil
}

// Inputs are the measured quantities a decision was derived from — the
// paper's symbols where they apply. Fields irrelevant to a kind are zero.
type Inputs struct {
	// TwSeconds is the measured per-checkpoint write time feeding Eq. (3).
	TwSeconds float64 `json:"tw_seconds,omitempty"`
	// IterSeconds is the measured iteration time t.
	IterSeconds float64 `json:"iter_seconds,omitempty"`
	// Q is the slowdown budget.
	Q float64 `json:"q,omitempty"`
	// N is the concurrent-checkpoint count in force.
	N int `json:"n,omitempty"`
	// PayloadBytes is the checkpoint size m (slot capacity for admissions).
	PayloadBytes int64 `json:"payload_bytes,omitempty"`
	// DeadRanks is how many workers the failure detector considers dead.
	DeadRanks int `json:"dead_ranks,omitempty"`
	// SlotsBusy is the slot occupancy observed at an admission decision.
	SlotsBusy int `json:"slots_busy,omitempty"`
	// Attempts is the I/O attempt count of a retry sequence.
	Attempts int `json:"attempts,omitempty"`
	// InBreach marks decisions taken while the ledger's slowdown EWMA was
	// above the budget q.
	InBreach bool `json:"in_breach,omitempty"`
}

// Alternative is one action a policy considered, with the cost the model
// predicted for it. The chosen action is stored in the same shape.
type Alternative struct {
	// Action names the candidate ("f=4", "N=2", "exclude-dead", …).
	Action string `json:"action"`
	// PredictedCost is the model's total cost in seconds (overhead plus
	// failure-weighted staleness for retune candidates).
	PredictedCost float64 `json:"predicted_cost_seconds"`
	// OverheadSeconds is the per-iteration checkpoint overhead component,
	// (s(f)−1)·t from the §3.4 slowdown model — the part the ledger can
	// measure, and therefore the part regret calibrates.
	OverheadSeconds float64 `json:"overhead_seconds,omitempty"`
	// StalenessSeconds is the candidate's worst-case lost work (Eq. (4)
	// minus the load term), weighted into PredictedCost by the failure rate.
	StalenessSeconds float64 `json:"staleness_seconds,omitempty"`
	// Slowdown is the candidate's predicted asymptotic slowdown.
	Slowdown float64 `json:"slowdown,omitempty"`
	// Feasible marks candidates within the budget q; infeasible ones are
	// logged but never count as the "best alternative" in regret.
	Feasible bool `json:"feasible"`
}

// Decision is one recorded policy decision. Scored decisions additionally
// carry the measured cost and the regret vs the best rejected alternative.
type Decision struct {
	// Seq orders decisions within one recorder.
	Seq uint64 `json:"seq"`
	// TS is when the decision was made, nanoseconds since the Unix epoch.
	TS int64 `json:"ts_unix_ns"`
	// Kind identifies the deciding policy.
	Kind Kind `json:"kind"`
	// Rank is the distributed worker rank (-1 for local decisions).
	Rank int32 `json:"rank,omitempty"`
	// Counter is the checkpoint counter or coordination round, when known.
	Counter uint64 `json:"counter,omitempty"`
	// Inputs are the measurements the decision was derived from.
	Inputs Inputs `json:"inputs"`
	// Chosen is the action taken; Rejected the top-K alternatives, best
	// predicted cost first.
	Chosen   Alternative   `json:"chosen"`
	Rejected []Alternative `json:"rejected,omitempty"`
	// Scored marks decisions joined against a measured outcome.
	Scored bool `json:"scored"`
	// MeasuredCost is the measured cost of the chosen action in seconds.
	MeasuredCost float64 `json:"measured_cost_seconds,omitempty"`
	// BestAlt / BestAltCost identify the cheapest feasible alternative
	// after calibration ("" when the chosen action was best).
	BestAlt     string  `json:"best_alternative,omitempty"`
	BestAltCost float64 `json:"best_alternative_cost_seconds,omitempty"`
	// Regret is max(0, MeasuredCost − BestAltCost): seconds per iteration
	// (retune) or stall seconds (the other kinds) the best rejected
	// alternative would have saved.
	Regret float64 `json:"regret_seconds"`
	// Outcome names how the decision was scored ("ledger-join",
	// "drain-join", "recovered", "exhausted", "stalled", "profiled", …).
	Outcome string `json:"outcome,omitempty"`
}

// Outcome bundles the arguments of RecordScored: a decision whose measured
// cost and regret are already known at record time.
type Outcome struct {
	Inputs   Inputs
	Chosen   Alternative
	Rejected []Alternative
	// Measured is the measured cost of the chosen action (seconds).
	Measured float64
	// Regret is the caller-computed regret; clamped to ≥ 0 and finite.
	Regret  float64
	Outcome string
	Counter uint64
	Rank    int32
}

// Config tunes the recorder. The zero value is usable.
type Config struct {
	// Capacity bounds the retained decisions (oldest evicted first, flight-
	// recorder semantics). Default 4096.
	Capacity int
	// TopK bounds the rejected alternatives kept per decision (default 4;
	// a floor of 2 is enforced so every retune record carries at least two
	// scored alternatives).
	TopK int
	// FailureRate is λ, the per-second failure probability weighting the
	// staleness component of retune candidate costs (Eq. (4)'s lost work
	// only matters as often as failures strike). Default 1/300 — one
	// failure every five minutes, the harsh end of the paper's §5.2.3
	// preemption traces.
	FailureRate float64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.TopK < 2 {
		c.TopK = 4
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 1.0 / 300
	}
	return c
}

// Recorder captures policy decisions and scores them with measured regret.
// It is an obs.Observer that forwards every event unchanged (atomics-free
// pass-through), an obs.BlockSink receiving the ledger's completed slowdown
// blocks for the retune join, and an obs.MetricsWriter exporting the
// pccheck_decision_* / pccheck_regret_* families. A nil *Recorder is inert;
// all methods are safe for concurrent use.
type Recorder struct {
	cfg  Config
	next obs.Observer

	mu      sync.Mutex
	seq     uint64
	buf     []Decision // ring, oldest at head once full
	head    int
	dropped uint64

	counts    [KindCount]uint64
	scored    [KindCount]uint64
	regretTot [KindCount]float64
	regretMax [KindCount]float64

	// pendingRetune holds retune decisions waiting for the ledger's next
	// completed block; pendingDegraded holds Stall decisions waiting for
	// their round to commit, keyed by round.
	pendingRetune   []*Decision
	pendingDegraded map[uint64]*Decision
	lastBlock       block
}

type block struct {
	mean, base float64
	iters      int
	ok         bool
}

// New builds a decision recorder forwarding events to next (usually the
// flight recorder; nil for stand-alone use). Chain order matters for the
// regret join: attach Ledger → decision.Recorder → Recorder, so the ledger
// discovers this recorder downstream and feeds it slowdown blocks.
func New(cfg Config, next obs.Observer) *Recorder {
	return &Recorder{
		cfg:             cfg.withDefaults(),
		next:            next,
		pendingDegraded: make(map[uint64]*Decision),
	}
}

// Next returns the observer this recorder forwards to (nil when none),
// making the recorder chain-walkable like the ledger.
func (r *Recorder) Next() obs.Observer {
	if r == nil {
		return nil
	}
	return r.next
}

// Emit implements obs.Observer: pure pass-through. Decision records are fed
// through the Record* methods by the policies themselves, not derived from
// the event stream, so the hot path stays a single forward.
func (r *Recorder) Emit(ev obs.Event) {
	if r == nil || r.next == nil {
		return
	}
	r.next.Emit(ev)
}

// Find walks an observer chain (via Next()) and returns the first decision
// recorder in it, nil when there is none. Policies call it once at
// construction so the per-decision probe is a single nil check.
func Find(o obs.Observer) *Recorder {
	for o != nil {
		if r, ok := o.(*Recorder); ok {
			return r
		}
		n, ok := o.(interface{ Next() obs.Observer })
		if !ok {
			return nil
		}
		o = n.Next()
	}
	return nil
}

// FailureRate returns λ, for callers building candidate costs.
func (r *Recorder) FailureRate() float64 {
	if r == nil {
		return 0
	}
	return r.cfg.FailureRate
}

// markLocked emits the PhaseDecision instant for d downstream.
func (r *Recorder) markLocked(d *Decision) {
	if r.next == nil {
		return
	}
	r.next.Emit(obs.Event{
		TS: d.TS, Phase: obs.PhaseDecision, Counter: d.Seq,
		Value: int64(d.Kind), Slot: -1, Writer: -1, Rank: d.Rank,
	})
}

// pushLocked stores a finished decision in the ring and folds it into the
// aggregates. Only pushed decisions count toward totals; pending ones are
// reported separately.
func (r *Recorder) pushLocked(d Decision) {
	r.counts[d.Kind]++
	if d.Scored {
		r.scored[d.Kind]++
		r.regretTot[d.Kind] += d.Regret
		if d.Regret > r.regretMax[d.Kind] {
			r.regretMax[d.Kind] = d.Regret
		}
	}
	if len(r.buf) < r.cfg.Capacity {
		r.buf = append(r.buf, d)
		return
	}
	r.buf[r.head] = d
	r.head = (r.head + 1) % r.cfg.Capacity
	r.dropped++
}

// newLocked allocates the next decision shell.
func (r *Recorder) newLocked(kind Kind, in Inputs, chosen Alternative, rejected []Alternative, counter uint64, rank int32) *Decision {
	r.seq++
	d := &Decision{
		Seq: r.seq, TS: time.Now().UnixNano(), Kind: kind, Rank: rank,
		Counter: counter, Inputs: in, Chosen: chosen,
		Rejected: trimAlternatives(rejected, r.cfg.TopK),
	}
	r.markLocked(d)
	return d
}

// trimAlternatives keeps the k cheapest-predicted alternatives, stable
// within ties (insertion sort: k and len are both tiny).
func trimAlternatives(alts []Alternative, k int) []Alternative {
	out := make([]Alternative, len(alts))
	copy(out, alts)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].PredictedCost < out[j-1].PredictedCost; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// sanitize clamps a regret/cost to [0, +finite).
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// RecordRetune records an interval re-derivation. The decision stays
// pending until the goodput ledger completes its next slowdown block
// (LedgerBlock), which supplies the measured overhead the chosen interval
// actually produced; Finalize scores stragglers against the last seen
// block. Use RetuneCandidates to build the chosen/rejected set from the
// same Eq. (3) inputs the controller used.
func (r *Recorder) RecordRetune(in Inputs, chosen Alternative, rejected []Alternative) {
	if r == nil {
		return
	}
	r.mu.Lock()
	d := r.newLocked(KindRetune, in, chosen, rejected, 0, -1)
	r.pendingRetune = append(r.pendingRetune, d)
	r.mu.Unlock()
}

// RecordScored records a decision whose measured cost and regret are known
// at record time (tune, slot admissions, retries, exclude-dead commits).
func (r *Recorder) RecordScored(kind Kind, o Outcome) {
	if r == nil {
		return
	}
	r.mu.Lock()
	d := r.newLocked(kind, o.Inputs, o.Chosen, o.Rejected, o.Counter, o.Rank)
	d.Scored = true
	d.MeasuredCost = sanitize(o.Measured)
	d.Regret = sanitize(o.Regret)
	d.Outcome = o.Outcome
	if alt, cost, ok := bestFeasible(d.Rejected); ok {
		d.BestAlt, d.BestAltCost = alt, cost
	}
	r.pushLocked(*d)
	r.mu.Unlock()
}

// OpenDegraded records a degraded-commit decision whose cost is still
// accruing — the coordinator chose to Stall a round blocked solely by dead
// ranks. ResolveDegraded closes it with the measured stall when the round
// finally commits; Finalize closes abandoned ones unscored. Re-opening an
// already-open round is a no-op (the stall is still the same decision).
func (r *Recorder) OpenDegraded(round uint64, in Inputs, chosen Alternative, rejected []Alternative) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if _, open := r.pendingDegraded[round]; !open {
		r.pendingDegraded[round] = r.newLocked(KindDegraded, in, chosen, rejected, round, -1)
	}
	r.mu.Unlock()
}

// ResolveDegraded closes a pending degraded-commit decision with the
// measured stall. Regret is the full stall: the rejected exclude-dead
// policy would have committed without waiting.
func (r *Recorder) ResolveDegraded(round uint64, measuredSeconds float64, outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if d, ok := r.pendingDegraded[round]; ok {
		delete(r.pendingDegraded, round)
		d.Scored = true
		d.MeasuredCost = sanitize(measuredSeconds)
		d.Regret = d.MeasuredCost
		d.Outcome = outcome
		if alt, cost, ok := bestFeasible(d.Rejected); ok {
			d.BestAlt, d.BestAltCost = alt, cost
		}
		r.pushLocked(*d)
	}
	r.mu.Unlock()
}

// bestFeasible returns the cheapest-predicted feasible alternative.
func bestFeasible(alts []Alternative) (string, float64, bool) {
	best, name, found := 0.0, "", false
	for _, a := range alts {
		if !a.Feasible {
			continue
		}
		if !found || a.PredictedCost < best {
			best, name, found = a.PredictedCost, a.Action, true
		}
	}
	return name, best, found
}

// LedgerBlock implements obs.BlockSink: the goodput ledger delivers each
// completed slowdown block (mean iteration seconds, baseline seconds,
// iteration count) and every pending retune decision is scored against it.
func (r *Recorder) LedgerBlock(meanIterSeconds, baselineSeconds float64, iters int) {
	if r == nil || iters <= 0 {
		return
	}
	r.mu.Lock()
	r.lastBlock = block{mean: meanIterSeconds, base: baselineSeconds, iters: iters, ok: true}
	for _, d := range r.pendingRetune {
		r.scoreRetuneLocked(d, meanIterSeconds, baselineSeconds, "ledger-join")
		r.pushLocked(*d)
	}
	r.pendingRetune = r.pendingRetune[:0]
	r.mu.Unlock()
}

// scoreRetuneLocked joins one retune decision against a measured block.
//
// The measured per-iteration checkpoint overhead (blockMean − baseline)
// calibrates the model: the ratio measured/predicted for the CHOSEN
// interval, clamped to [0.25, 4], rescales every rejected candidate's
// predicted overhead, so regret compares the measured world against
// alternatives under the same observed conditions rather than the model's
// idealized ones. Infeasible (budget-violating) candidates never win.
func (r *Recorder) scoreRetuneLocked(d *Decision, mean, base float64, outcome string) {
	lam := r.cfg.FailureRate
	measuredOver := 0.0
	if base > 0 {
		measuredOver = mean - base
		if measuredOver < 0 {
			measuredOver = 0
		}
	} else {
		outcome = "no-baseline"
	}
	calib := 1.0
	if d.Chosen.OverheadSeconds > 1e-12 && measuredOver > 1e-12 {
		calib = measuredOver / d.Chosen.OverheadSeconds
		if calib < 0.25 {
			calib = 0.25
		} else if calib > 4 {
			calib = 4
		}
	}
	measuredCost := measuredOver + lam*d.Chosen.StalenessSeconds
	best, bestName := measuredCost, ""
	for _, a := range d.Rejected {
		if !a.Feasible {
			continue
		}
		est := calib*a.OverheadSeconds + lam*a.StalenessSeconds
		if est < best {
			best, bestName = est, a.Action
		}
	}
	d.Scored = true
	d.MeasuredCost = sanitize(measuredCost)
	d.Outcome = outcome
	if bestName != "" {
		d.BestAlt = bestName
		d.BestAltCost = sanitize(best)
		d.Regret = sanitize(measuredCost - best)
	}
}

// Finalize closes every pending decision: retunes are scored against the
// last seen ledger block ("drain-join") or pushed unscored when no block
// ever completed; abandoned degraded stalls are pushed unscored. Call it
// at drain/shutdown so the exported log covers every decision; recording
// may continue afterwards.
func (r *Recorder) Finalize() {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, d := range r.pendingRetune {
		if r.lastBlock.ok {
			r.scoreRetuneLocked(d, r.lastBlock.mean, r.lastBlock.base, "drain-join")
		} else {
			d.Outcome = "no-measurement"
		}
		r.pushLocked(*d)
	}
	r.pendingRetune = r.pendingRetune[:0]
	for round, d := range r.pendingDegraded {
		delete(r.pendingDegraded, round)
		d.Outcome = "unresolved"
		r.pushLocked(*d)
	}
	r.mu.Unlock()
}

// Len returns the retained decision count.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Decisions returns the retained decisions, oldest first.
func (r *Recorder) Decisions() []Decision {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Decision, 0, len(r.buf))
	out = append(out, r.buf[r.head:]...)
	out = append(out, r.buf[:r.head]...)
	return out
}

// RetuneCandidates evaluates Eq. (3)'s objective over the interval
// candidates around a retune: the chosen f, its neighbours (f±1, 2f, ⌈f/2⌉)
// and the previous interval, each priced by the analytic model — predicted
// slowdown s(f) = max(Tw, N·f·t)/(N·f·t), per-iteration overhead (s−1)·t,
// and Eq. (4) staleness weighted by λ. The measured (tw, t) pair is folded
// into the model by synthesizing a bandwidth that reproduces tw at the
// current N, so candidate costs reflect measured, not assumed, write times.
// At least two rejected candidates are produced whenever the clamp range
// allows it.
func RetuneCandidates(twSec, iterSec, q float64, n, chosen, prev, minI, maxI int, lambda float64) (Alternative, []Alternative) {
	if n < 1 {
		n = 1
	}
	const refBytes = 1 << 20
	mk := func(f int) Alternative {
		p := perfmodel.Params{
			IterTime:        time.Duration(iterSec * float64(time.Second)),
			CheckpointBytes: refBytes,
			StorageBW:       refBytes * float64(n) / twSec,
			N:               n, P: 1, Interval: f,
		}
		a := Alternative{Action: fmt.Sprintf("f=%d", f), Slowdown: 1, Feasible: true}
		if s, err := p.Slowdown(); err == nil {
			a.Slowdown = s
		}
		a.OverheadSeconds = (a.Slowdown - 1) * iterSec
		if rec, err := p.MaxRecovery(perfmodel.PCcheck); err == nil {
			a.StalenessSeconds = (rec - p.LoadTime()).Seconds()
		}
		a.PredictedCost = a.OverheadSeconds + lambda*a.StalenessSeconds
		a.Feasible = a.Slowdown <= q+1e-9
		return a
	}
	chosenAlt := mk(chosen)
	seen := map[int]bool{chosen: true}
	var alts []Alternative
	add := func(f int) {
		if f < minI {
			f = minI
		}
		if f > maxI {
			f = maxI
		}
		if seen[f] {
			return
		}
		seen[f] = true
		alts = append(alts, mk(f))
	}
	for _, f := range []int{prev, chosen - 1, chosen + 1, 2 * chosen, (chosen + 1) / 2} {
		add(f)
	}
	for extra := 2; len(alts) < 2 && extra < 16; extra++ {
		add(chosen + extra)
		add(chosen - extra)
	}
	return chosenAlt, alts
}
