package decision

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// KindStats aggregates one decision kind.
type KindStats struct {
	Kind        string  `json:"kind"`
	Total       uint64  `json:"total"`
	Scored      uint64  `json:"scored"`
	RegretTotal float64 `json:"regret_total_seconds"`
	RegretMax   float64 `json:"regret_max_seconds"`
}

// Summary aggregates a decision log: counts, join coverage, and regret.
type Summary struct {
	// Total / Scored count closed decisions and those joined to a
	// measurement; Pending counts still-open ones (retunes awaiting a
	// ledger block, unresolved stalls); Dropped counts ring evictions.
	Total   uint64 `json:"total"`
	Scored  uint64 `json:"scored"`
	Pending uint64 `json:"pending"`
	Dropped uint64 `json:"dropped"`
	// Coverage is Scored/Total (1 when Total is 0 — nothing unjoined).
	Coverage float64 `json:"coverage"`
	// Regret aggregates are over scored decisions, in seconds.
	RegretTotal float64     `json:"regret_total_seconds"`
	RegretMean  float64     `json:"regret_mean_seconds"`
	RegretMax   float64     `json:"regret_max_seconds"`
	Kinds       []KindStats `json:"kinds,omitempty"`
}

func (s *Summary) finish() {
	if s.Scored > 0 {
		s.RegretMean = s.RegretTotal / float64(s.Scored)
	}
	if s.Total > 0 {
		s.Coverage = float64(s.Scored) / float64(s.Total)
	} else {
		s.Coverage = 1
	}
}

// Summary returns the recorder's aggregates over every closed decision
// (including ones the ring has since evicted).
func (r *Recorder) Summary() Summary {
	var s Summary
	if r == nil {
		s.finish()
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Pending = uint64(len(r.pendingRetune) + len(r.pendingDegraded))
	s.Dropped = r.dropped
	for k := Kind(0); k < KindCount; k++ {
		s.Total += r.counts[k]
		s.Scored += r.scored[k]
		s.RegretTotal += r.regretTot[k]
		if r.regretMax[k] > s.RegretMax {
			s.RegretMax = r.regretMax[k]
		}
		if r.counts[k] == 0 {
			continue
		}
		s.Kinds = append(s.Kinds, KindStats{
			Kind: k.String(), Total: r.counts[k], Scored: r.scored[k],
			RegretTotal: r.regretTot[k], RegretMax: r.regretMax[k],
		})
	}
	s.finish()
	return s
}

// Summarize aggregates an exported decision log (e.g. read back with
// ReadJSONL). Eviction and pending counts are unknowable from a log and
// stay zero.
func Summarize(ds []Decision) Summary {
	var s Summary
	perTotal := map[Kind]*KindStats{}
	order := []Kind{}
	for _, d := range ds {
		ks := perTotal[d.Kind]
		if ks == nil {
			ks = &KindStats{Kind: d.Kind.String()}
			perTotal[d.Kind] = ks
			order = append(order, d.Kind)
		}
		s.Total++
		ks.Total++
		if d.Scored {
			s.Scored++
			ks.Scored++
			s.RegretTotal += d.Regret
			ks.RegretTotal += d.Regret
			if d.Regret > s.RegretMax {
				s.RegretMax = d.Regret
			}
			if d.Regret > ks.RegretMax {
				ks.RegretMax = d.Regret
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for _, k := range order {
		s.Kinds = append(s.Kinds, *perTotal[k])
	}
	s.finish()
	return s
}

// WriteJSONL exports the retained decisions, one JSON object per line,
// oldest first. Call Finalize first so pending decisions are included.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, d := range r.Decisions() {
		if err := enc.Encode(d); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a decision log produced by WriteJSONL. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadJSONL(rd io.Reader) ([]Decision, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var out []Decision
	line := 0
	for sc.Scan() {
		line++
		b := strings.TrimSpace(sc.Text())
		if b == "" {
			continue
		}
		var d Decision
		if err := json.Unmarshal([]byte(b), &d); err != nil {
			return nil, fmt.Errorf("decision: line %d: %w", line, err)
		}
		out = append(out, d)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteMetrics implements the Serve MetricsWriter hook: per-kind decision
// and regret families plus overall regret gauges. Every kind is always
// present (zero-valued when unseen) so dashboards see stable label sets.
func (r *Recorder) WriteMetrics(w io.Writer) {
	var snap struct {
		counts, scored  [KindCount]uint64
		regret          [KindCount]float64
		pending, dropit uint64
	}
	var sum Summary
	if r != nil {
		r.mu.Lock()
		snap.counts = r.counts
		snap.scored = r.scored
		snap.regret = r.regretTot
		snap.pending = uint64(len(r.pendingRetune) + len(r.pendingDegraded))
		snap.dropit = r.dropped
		r.mu.Unlock()
		sum = r.Summary()
	} else {
		sum.finish()
	}
	fmt.Fprintf(w, "# HELP pccheck_decision_total Policy decisions recorded, by kind.\n")
	fmt.Fprintf(w, "# TYPE pccheck_decision_total counter\n")
	for k := Kind(0); k < KindCount; k++ {
		fmt.Fprintf(w, "pccheck_decision_total{kind=%q} %d\n", k.String(), snap.counts[k])
	}
	fmt.Fprintf(w, "# HELP pccheck_decision_scored_total Decisions joined against a measured outcome, by kind.\n")
	fmt.Fprintf(w, "# TYPE pccheck_decision_scored_total counter\n")
	for k := Kind(0); k < KindCount; k++ {
		fmt.Fprintf(w, "pccheck_decision_scored_total{kind=%q} %d\n", k.String(), snap.scored[k])
	}
	fmt.Fprintf(w, "# HELP pccheck_decision_regret_seconds_total Measured regret versus the best rejected alternative, by kind.\n")
	fmt.Fprintf(w, "# TYPE pccheck_decision_regret_seconds_total counter\n")
	for k := Kind(0); k < KindCount; k++ {
		fmt.Fprintf(w, "pccheck_decision_regret_seconds_total{kind=%q} %g\n", k.String(), snap.regret[k])
	}
	fmt.Fprintf(w, "# HELP pccheck_decision_pending Decisions awaiting a measurement join.\n")
	fmt.Fprintf(w, "# TYPE pccheck_decision_pending gauge\n")
	fmt.Fprintf(w, "pccheck_decision_pending %d\n", snap.pending)
	fmt.Fprintf(w, "# HELP pccheck_decision_dropped_total Decisions evicted from the ring.\n")
	fmt.Fprintf(w, "# TYPE pccheck_decision_dropped_total counter\n")
	fmt.Fprintf(w, "pccheck_decision_dropped_total %d\n", snap.dropit)
	fmt.Fprintf(w, "# HELP pccheck_regret_seconds_mean Mean regret across scored decisions.\n")
	fmt.Fprintf(w, "# TYPE pccheck_regret_seconds_mean gauge\n")
	fmt.Fprintf(w, "pccheck_regret_seconds_mean %g\n", sum.RegretMean)
	fmt.Fprintf(w, "# HELP pccheck_regret_seconds_max Maximum regret across scored decisions.\n")
	fmt.Fprintf(w, "# TYPE pccheck_regret_seconds_max gauge\n")
	fmt.Fprintf(w, "pccheck_regret_seconds_max %g\n", sum.RegretMax)
}

// FormatTable renders decisions worst-regret-first (unscored last, then by
// recency), up to limit rows (0 = all).
func FormatTable(w io.Writer, ds []Decision, limit int) {
	sorted := make([]Decision, len(ds))
	copy(sorted, ds)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Scored != b.Scored {
			return a.Scored
		}
		if a.Scored && a.Regret != b.Regret {
			return a.Regret > b.Regret
		}
		return a.Seq > b.Seq
	})
	if limit > 0 && len(sorted) > limit {
		sorted = sorted[:limit]
	}
	fmt.Fprintf(w, "%-5s %-15s %-12s %11s %11s %-14s %-12s %s\n",
		"seq", "kind", "chosen", "measured", "regret", "best-alt", "outcome", "alternatives")
	for _, d := range sorted {
		measured, regret := "-", "-"
		if d.Scored {
			measured = fmt.Sprintf("%.4gs", d.MeasuredCost)
			regret = fmt.Sprintf("%.4gs", d.Regret)
		}
		best := d.BestAlt
		if best == "" {
			best = "(chosen)"
		}
		alts := make([]string, 0, len(d.Rejected))
		for _, a := range d.Rejected {
			feas := ""
			if !a.Feasible {
				feas = "!q"
			}
			alts = append(alts, fmt.Sprintf("%s=%.3gs%s", a.Action, a.PredictedCost, feas))
		}
		fmt.Fprintf(w, "%-5d %-15s %-12s %11s %11s %-14s %-12s %s\n",
			d.Seq, d.Kind, d.Chosen.Action, measured, regret, best, d.Outcome,
			strings.Join(alts, " "))
	}
}
