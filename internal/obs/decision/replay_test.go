package decision

import (
	"strings"
	"testing"
)

func TestReplayRetune(t *testing.T) {
	d := Decision{
		Seq: 1, Kind: KindRetune,
		Inputs: Inputs{TwSeconds: 0.02, IterSeconds: 0.001, N: 2, PayloadBytes: 1 << 20},
		Chosen: Alternative{Action: "f=3"},
		Rejected: []Alternative{
			{Action: "f=1"}, {Action: "f=6"}, {Action: "f=3"}, // duplicate of chosen
		},
	}
	outs, err := ReplayRetune(d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("outcomes = %d, want 3 (chosen + 2 distinct rejected)", len(outs))
	}
	var sawChosen bool
	for i, o := range outs {
		if i > 0 && outs[i-1].Interval >= o.Interval {
			t.Errorf("outcomes not sorted by interval: %+v", outs)
		}
		if o.SimSlowdown < 1 {
			t.Errorf("%s simulated slowdown %v < 1", o.Action, o.SimSlowdown)
		}
		if o.Chosen {
			if o.Action != "f=3" {
				t.Errorf("chosen mark on %s, want f=3", o.Action)
			}
			sawChosen = true
		}
	}
	if !sawChosen {
		t.Error("no outcome marked chosen")
	}
	// Lost work at a random failure instant grows with the interval.
	if outs[0].MeanLagIters >= outs[len(outs)-1].MeanLagIters {
		t.Errorf("mean lag not increasing in f: %+v", outs)
	}
}

func TestReplayRetuneRejectsBadInput(t *testing.T) {
	if _, err := ReplayRetune(Decision{Kind: KindRetry}, 1); err == nil {
		t.Error("non-retune decision accepted")
	}
	if _, err := ReplayRetune(Decision{Kind: KindRetune}, 1); err == nil {
		t.Error("retune with no measured inputs accepted")
	}
	bad := Decision{
		Kind:   KindRetune,
		Inputs: Inputs{TwSeconds: 0.01, IterSeconds: 0.001, N: 1},
		Chosen: Alternative{Action: "interval-3"},
	}
	if _, err := ReplayRetune(bad, 1); err == nil || !strings.Contains(err.Error(), "cannot replay") {
		t.Errorf("unparseable action not rejected: %v", err)
	}
}
