package promtext

import (
	"strings"
	"testing"
)

const goodDoc = `# HELP pccheck_save_seconds Checkpoint save phase latency.
# TYPE pccheck_save_seconds summary
pccheck_save_seconds{quantile="0.5"} 0.004
pccheck_save_seconds{quantile="0.95"} 0.005
pccheck_save_seconds_sum 0.21
pccheck_save_seconds_count 42
# HELP pccheck_published_total Checkpoints that became the latest durable state.
# TYPE pccheck_published_total counter
pccheck_published_total 42
# HELP pccheck_goodput_ratio Fraction of wall-clock in useful compute.
# TYPE pccheck_goodput_ratio gauge
pccheck_goodput_ratio 0.97
# HELP pccheck_stall_seconds_total Attributed stall seconds.
# TYPE pccheck_stall_seconds_total counter
pccheck_stall_seconds_total{phase="snapshot"} 1.5
pccheck_stall_seconds_total{phase="slot-wait"} 0
# HELP req_hist A histogram.
# TYPE req_hist histogram
req_hist_bucket{le="0.1"} 3
req_hist_bucket{le="+Inf"} 10
req_hist_sum 0.8
req_hist_count 10
untyped_thing 7
`

func TestParseValid(t *testing.T) {
	fams, err := Parse(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 6 {
		names := make([]string, len(fams))
		for i, f := range fams {
			names[i] = f.Name
		}
		t.Fatalf("families = %d (%v), want 6", len(fams), names)
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}

	save := byName["pccheck_save_seconds"]
	if save.Type != "summary" || len(save.Samples) != 4 {
		t.Errorf("save family = %+v", save)
	}
	if s := save.Sample("pccheck_save_seconds", "quantile", "0.95"); s == nil || s.Value != 0.005 {
		t.Errorf("p95 sample = %+v", s)
	}
	goodput := byName["pccheck_goodput_ratio"]
	if v, ok := goodput.Value(); !ok || v != 0.97 {
		t.Errorf("goodput value = %v/%v", v, ok)
	}
	if h := byName["req_hist"]; h.Type != "histogram" || len(h.Samples) != 4 {
		t.Errorf("histogram family = %+v", h)
	}
	if u := byName["untyped_thing"]; u.Type != "untyped" {
		t.Errorf("untyped family = %+v", u)
	}
	stall := byName["pccheck_stall_seconds_total"]
	if s := stall.Sample("pccheck_stall_seconds_total", "phase", "slot-wait"); s == nil {
		t.Errorf("label value with hyphen lost: %+v", stall.Samples)
	}
}

func TestParseEscapes(t *testing.T) {
	doc := `m{l="a\"b\\c\nd"} 1` + "\n"
	fams, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := "a\"b\\c\nd"
	if got := fams[0].Samples[0].Labels["l"]; got != want {
		t.Fatalf("label = %q, want %q", got, want)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"duplicate series":        "m 1\nm 2\n",
		"duplicate labeled":       `m{a="x"} 1` + "\n" + `m{a="x"} 2` + "\n",
		"interleaved family":      "a 1\nb 2\na 3\n",
		"duplicate TYPE":          "# TYPE m counter\n# TYPE m counter\nm 1\n",
		"duplicate HELP":          "# HELP m one\n# HELP m two\nm 1\n",
		"TYPE after samples":      "m 1\n# TYPE m counter\n",
		"unknown type":            "# TYPE m widget\nm 1\n",
		"bad metric name":         "9metric 1\n",
		"bad label name":          `m{9l="x"} 1` + "\n",
		"reserved label name":     `m{__internal="x"} 1` + "\n",
		"unquoted label value":    "m{l=x} 1\n",
		"unterminated labels":     `m{l="x" 1` + "\n",
		"bad value":               "m notanumber\n",
		"missing value":           "m\n",
		"bad timestamp":           "m 1 soon\n",
		"bad escape":              `m{l="\q"} 1` + "\n",
		"duplicate label":         `m{l="a",l="b"} 1` + "\n",
		"summary without q":       "# TYPE s summary\ns 1\n",
		"histogram bucket w/o le": "# TYPE h histogram\nh_bucket 1\n",
	}
	for name, doc := range cases {
		if _, err := Parse(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted %q", name, doc)
		}
	}
}

func TestParseSpecialValues(t *testing.T) {
	doc := "a +Inf\n# TYPE b gauge\nb NaN\nc -2.5e-3 1700000000000\n"
	fams, err := Parse(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("families = %d, want 3", len(fams))
	}
}

func TestLintCountsFamilies(t *testing.T) {
	n, err := Lint(strings.NewReader(goodDoc))
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("Lint families = %d, want 6", n)
	}
	if _, err := Lint(strings.NewReader("m 1\nm 1\n")); err == nil {
		t.Fatal("Lint accepted duplicate series")
	}
}
