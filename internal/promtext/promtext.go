// Package promtext parses and validates the Prometheus text exposition
// format (version 0.0.4) — the syntax /metrics speaks. It exists so the
// exporters can be linted in CI (metrics-lint: scrape, parse every line,
// reject duplicate or malformed families) and so pccheck-top can read a
// live endpoint without importing a client library. It validates what
// real scrapers enforce: metric and label name charsets, quoted label
// values with escapes, float sample values, HELP/TYPE placement, family
// grouping (no interleaving), summary/histogram suffix discipline, and
// uniqueness of every (name, label set) series.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one series sample: a metric name, its label set and value.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns the sample's value for the label name ("" when unset).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Family is one metric family: the base name, its TYPE and HELP, and
// every sample that belongs to it (including _sum/_count/_bucket series
// for summaries and histograms).
type Family struct {
	Name    string
	Type    string // counter, gauge, summary, histogram, untyped
	Help    string
	Samples []Sample
}

// Sample returns the first sample matching name and the given
// label-name/label-value pairs (nil when absent).
func (f *Family) Sample(name string, labelPairs ...string) *Sample {
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		ok := true
		for j := 0; j+1 < len(labelPairs); j += 2 {
			if s.Labels[labelPairs[j]] != labelPairs[j+1] {
				ok = false
				break
			}
		}
		if ok {
			return s
		}
	}
	return nil
}

// Value returns the value of the family's single plain sample (the one
// named exactly Family.Name with no labels). ok is false when the family
// has no such sample.
func (f *Family) Value() (v float64, ok bool) {
	for _, s := range f.Samples {
		if s.Name == f.Name && len(s.Labels) == 0 {
			return s.Value, true
		}
	}
	return 0, false
}

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "summary": true,
	"histogram": true, "untyped": true,
}

type parser struct {
	fams  map[string]*Family
	order []string
	// lastFam tracks grouping: once lines for a family stop, any later
	// line for it is an interleave violation.
	lastFam string
	series  map[string]int // (name + sorted labels) → defining line
}

// Parse reads one text exposition document and returns its families in
// first-appearance order, or the first format violation found (with the
// offending line number).
func Parse(r io.Reader) ([]Family, error) {
	p := &parser{fams: make(map[string]*Family), series: make(map[string]int)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		var err error
		if strings.HasPrefix(line, "#") {
			err = p.comment(line, lineNo)
		} else {
			err = p.sample(line, lineNo)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("promtext: read: %w", err)
	}
	out := make([]Family, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.fams[name])
	}
	return out, nil
}

// Lint parses the document and returns the family count; it is the
// CI-facing wrapper (any violation is the returned error).
func Lint(r io.Reader) (int, error) {
	fams, err := Parse(r)
	if err != nil {
		return 0, err
	}
	return len(fams), nil
}

// enter returns name's family, creating it on first sight and enforcing
// the grouping rule: all lines of a family must be contiguous.
func (p *parser) enter(name string, lineNo int) (*Family, error) {
	if f, ok := p.fams[name]; ok {
		if p.lastFam != name {
			return nil, fmt.Errorf("promtext: line %d: family %q interleaved (lines for it already ended)", lineNo, name)
		}
		return f, nil
	}
	f := &Family{Name: name, Type: "untyped"}
	p.fams[name] = f
	p.order = append(p.order, name)
	p.lastFam = name
	return f, nil
}

// comment handles "# HELP", "# TYPE" and free comments.
func (p *parser) comment(line string, lineNo int) error {
	rest := strings.TrimPrefix(line, "#")
	fields := strings.SplitN(strings.TrimLeft(rest, " "), " ", 3)
	switch fields[0] {
	case "HELP":
		if len(fields) < 2 {
			return fmt.Errorf("promtext: line %d: HELP without metric name", lineNo)
		}
		name := fields[1]
		if !validMetricName(name) {
			return fmt.Errorf("promtext: line %d: invalid metric name %q in HELP", lineNo, name)
		}
		f, err := p.enter(name, lineNo)
		if err != nil {
			return err
		}
		if f.Help != "" {
			return fmt.Errorf("promtext: line %d: duplicate HELP for %q", lineNo, name)
		}
		if len(fields) == 3 {
			f.Help = fields[2]
		}
	case "TYPE":
		if len(fields) < 3 {
			return fmt.Errorf("promtext: line %d: TYPE needs a metric name and a type", lineNo)
		}
		name, typ := fields[1], strings.TrimSpace(fields[2])
		if !validMetricName(name) {
			return fmt.Errorf("promtext: line %d: invalid metric name %q in TYPE", lineNo, name)
		}
		if !validTypes[typ] {
			return fmt.Errorf("promtext: line %d: unknown type %q for %q", lineNo, typ, name)
		}
		f, err := p.enter(name, lineNo)
		if err != nil {
			return err
		}
		if f.Type != "untyped" {
			return fmt.Errorf("promtext: line %d: duplicate TYPE for %q", lineNo, name)
		}
		if len(f.Samples) > 0 {
			return fmt.Errorf("promtext: line %d: TYPE for %q after its samples", lineNo, name)
		}
		f.Type = typ
	default:
		// Free-form comment: ignored, does not end the current family.
	}
	return nil
}

// sample parses one sample line: name[{labels}] value [timestamp].
func (p *parser) sample(line string, lineNo int) error {
	name, rest, err := scanName(line)
	if err != nil {
		return fmt.Errorf("promtext: line %d: %v", lineNo, err)
	}
	var labels map[string]string
	if strings.HasPrefix(rest, "{") {
		labels, rest, err = scanLabels(rest)
		if err != nil {
			return fmt.Errorf("promtext: line %d: %v", lineNo, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 || len(fields) > 2 {
		return fmt.Errorf("promtext: line %d: want 'value [timestamp]' after %q, got %q", lineNo, name, rest)
	}
	val, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fmt.Errorf("promtext: line %d: bad sample value %q: %v", lineNo, fields[0], err)
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("promtext: line %d: bad timestamp %q", lineNo, fields[1])
		}
	}

	famName := p.familyOf(name, labels)
	f, err := p.enter(famName, lineNo)
	if err != nil {
		return err
	}
	if err := p.checkSuffix(f, name, labels, lineNo); err != nil {
		return err
	}
	key := seriesKey(name, labels)
	if prev, dup := p.series[key]; dup {
		return fmt.Errorf("promtext: line %d: duplicate series %s (first on line %d)", lineNo, key, prev)
	}
	p.series[key] = lineNo
	f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: val})
	return nil
}

// familyOf maps a sample name onto its family: summaries own their _sum
// and _count series, histograms additionally their _bucket series.
func (p *parser) familyOf(name string, labels map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		f := p.fams[base]
		if f == nil {
			continue
		}
		switch f.Type {
		case "histogram":
			return base
		case "summary":
			if suf != "_bucket" {
				return base
			}
		}
	}
	return name
}

// checkSuffix enforces summary/histogram sample discipline.
func (p *parser) checkSuffix(f *Family, name string, labels map[string]string, lineNo int) error {
	switch f.Type {
	case "summary":
		switch name {
		case f.Name:
			if _, ok := labels["quantile"]; !ok {
				return fmt.Errorf("promtext: line %d: summary sample %q without quantile label", lineNo, name)
			}
		case f.Name + "_sum", f.Name + "_count":
		default:
			return fmt.Errorf("promtext: line %d: sample %q not valid for summary %q", lineNo, name, f.Name)
		}
	case "histogram":
		switch name {
		case f.Name + "_bucket":
			if _, ok := labels["le"]; !ok {
				return fmt.Errorf("promtext: line %d: histogram bucket %q without le label", lineNo, name)
			}
		case f.Name + "_sum", f.Name + "_count":
		default:
			return fmt.Errorf("promtext: line %d: sample %q not valid for histogram %q", lineNo, name, f.Name)
		}
	default:
		if name != f.Name {
			return fmt.Errorf("promtext: line %d: sample %q does not match family %q", lineNo, name, f.Name)
		}
	}
	return nil
}

func seriesKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// scanName consumes the metric name prefix of a sample line.
func scanName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		if c == '{' || c == ' ' || c == '\t' {
			break
		}
		i++
	}
	name = line[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("invalid metric name %q", name)
	}
	return name, line[i:], nil
}

// scanLabels consumes a {label="value",...} block, handling the format's
// \\, \" and \n escapes inside quoted values.
func scanLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, "", fmt.Errorf("unterminated label block %q", s)
		}
		lname := s[start:i]
		if !validLabelName(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("label %q value not quoted", lname)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated value for label %q", lname)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				i++
				if i >= len(s) {
					return nil, "", fmt.Errorf("dangling escape in label %q", lname)
				}
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("bad escape \\%c in label %q", s[i], lname)
				}
				i++
				continue
			}
			val.WriteByte(c)
			i++
		}
		if _, dup := labels[lname]; dup {
			return nil, "", fmt.Errorf("duplicate label %q", lname)
		}
		labels[lname] = val.String()
	}
}
