//go:build !race

package tuner

const raceEnabled = false
