// Package tuner implements PCcheck's configuration tool (§3.4): given user
// constraints (DRAM budget M, storage budget S, acceptable slowdown q) and
// workload parameters (checkpoint size m, iteration time t), it empirically
// measures the per-checkpoint write time Tw for candidate numbers of
// concurrent checkpoints N, picks N* minimising Tw/N, and derives the
// minimum checkpoint interval f* = ceil(Tw / (N*·q·t)) — Eq. (3).
//
// Profiling is real: each candidate N is exercised by running N concurrent
// checkpoints of m bytes against the actual device, so device- and
// per-thread bandwidth limits show up exactly as they will in production.
package tuner

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/obs/decision"
	"pccheck/internal/perfmodel"
	"pccheck/internal/storage"
)

// Input bundles the workload parameters and user constraints of Table 2.
type Input struct {
	// IterTime is t, the measured no-checkpoint iteration time.
	IterTime time.Duration
	// CheckpointBytes is m.
	CheckpointBytes int64
	// DRAMBudget is M, the staging memory the user grants (0 ⇒ 2m).
	DRAMBudget int64
	// StorageBudget is S, the persistent capacity granted (0 ⇒ unlimited
	// within the device).
	StorageBudget int64
	// MaxOverhead is q, the acceptable slowdown (> 1).
	MaxOverhead float64
	// MaxN caps the N search (0 ⇒ min(S/m − 1, 8); §5.2.3 observes 2–4
	// suffice, so the default keeps profiling cheap).
	MaxN int
	// Writers fixes p; 0 searches 1–4 (§3.4: "ideally 2 to 4").
	Writers int
	// ChunkBytes fixes b; 0 picks m/4 (§3.4 sizes b to saturate GPU–CPU
	// bandwidth; for the emulated path a quarter-checkpoint chunk keeps the
	// pipeline busy without exhausting M).
	ChunkBytes int
	// Rounds is how many checkpoints each profiled configuration writes
	// (0 ⇒ 3).
	Rounds int
	// PerWriterBW forwards the per-thread bandwidth model to the engine
	// (0 = unpaced; tests use it to make the p-search meaningful).
	PerWriterBW float64
	// Decisions, when non-nil, records the N* search as a tune decision:
	// every candidate N with its Tw/N cost (measured in Profile, modeled
	// in Analyze), the chosen N, and the regret of the §3.4
	// smaller-N-on-ties preference (within 5%, a larger N with strictly
	// smaller Tw/N loses the tie — that gap is deliberate, recorded
	// regret).
	Decisions *decision.Recorder
}

func (in Input) validate() error {
	if in.IterTime <= 0 {
		return fmt.Errorf("tuner: iteration time must be positive, got %v", in.IterTime)
	}
	if in.CheckpointBytes <= 0 {
		return fmt.Errorf("tuner: checkpoint size must be positive, got %d", in.CheckpointBytes)
	}
	if in.MaxOverhead <= 1 {
		return fmt.Errorf("tuner: overhead budget q must exceed 1, got %v", in.MaxOverhead)
	}
	return nil
}

// Result is the chosen configuration.
type Result struct {
	// N is the number of concurrent checkpoints.
	N int
	// Writers is p.
	Writers int
	// ChunkBytes is b.
	ChunkBytes int
	// Interval is f*, the minimum checkpoint interval in iterations that
	// keeps slowdown within q.
	Interval int
	// Tw is the measured worst-case checkpoint write time at N.
	Tw time.Duration
	// TwOverN is the quantity §3.4 minimises.
	TwOverN time.Duration
	// Profile records Tw for every candidate N, for reporting.
	Profile map[int]time.Duration
}

// Profile measures candidate configurations on dev and returns the chosen
// one. dev must be large enough for the largest candidate N
// (core.DeviceBytes(maxN, m)); candidates that do not fit are skipped.
func Profile(dev storage.Device, in Input) (Result, error) {
	if err := in.validate(); err != nil {
		return Result{}, err
	}
	m := in.CheckpointBytes
	maxN := in.MaxN
	if maxN <= 0 {
		maxN = 8
	}
	if in.StorageBudget > 0 {
		if cap := perfmodel.MaxConcurrent(in.StorageBudget, m); cap < maxN {
			maxN = cap
		}
	}
	for maxN > 0 && dev.Size() < core.DeviceBytes(maxN, m) {
		maxN--
	}
	if maxN < 1 {
		return Result{}, fmt.Errorf("tuner: device/storage budget too small for even one checkpoint of %d bytes", m)
	}
	rounds := in.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	chunk := in.ChunkBytes
	if chunk <= 0 {
		chunk = int(m / 4)
		if chunk < 1 {
			chunk = int(m)
		}
	}

	// Pick p first at N=1 (per-thread limits bind hardest there), then
	// search N with p fixed.
	writers := in.Writers
	if writers <= 0 {
		best := time.Duration(math.MaxInt64)
		for p := 1; p <= 4; p++ {
			tw, err := measureTw(dev, in, m, 1, p, chunk, rounds)
			if err != nil {
				return Result{}, err
			}
			// Require a meaningful (>5%) gain to add threads.
			if float64(tw) < 0.95*float64(best) {
				best = tw
				writers = p
			}
		}
	}

	res := Result{Writers: writers, ChunkBytes: chunk, Profile: make(map[int]time.Duration)}
	bestTwOverN := time.Duration(math.MaxInt64)
	for n := 1; n <= maxN; n++ {
		tw, err := measureTw(dev, in, m, n, writers, chunk, rounds)
		if err != nil {
			return Result{}, err
		}
		res.Profile[n] = tw
		twOverN := tw / time.Duration(n)
		// Prefer smaller N on ties (within 5%): fewer concurrent
		// checkpoints means less rollback on failure (§5.2.3).
		if float64(twOverN) < 0.95*float64(bestTwOverN) {
			bestTwOverN = twOverN
			res.N = n
			res.Tw = tw
		}
	}
	res.TwOverN = bestTwOverN

	f := math.Ceil(res.Tw.Seconds() / (float64(res.N) * in.MaxOverhead * in.IterTime.Seconds()))
	if f < 1 {
		f = 1
	}
	res.Interval = int(f)
	recordTune(in, res, "profiled")
	return res, nil
}

// recordTune logs the N* search (§3.4) to the decision recorder, if one is
// configured: every candidate N becomes a scored alternative with its Tw/N
// cost, and the decision is scored immediately — the profile IS the
// measurement. Regret is the gap to the strictly best Tw/N; nonzero regret
// marks the smaller-N-on-ties preference trading throughput for smaller
// rollback on failure.
func recordTune(in Input, res Result, mode string) {
	rec := in.Decisions
	if rec == nil {
		return
	}
	ns := make([]int, 0, len(res.Profile))
	for n := range res.Profile {
		ns = append(ns, n)
	}
	sort.Ints(ns)
	var chosen decision.Alternative
	var rejected []decision.Alternative
	best := math.MaxFloat64
	for _, n := range ns {
		tw := res.Profile[n]
		twOverN := tw.Seconds() / float64(n)
		if twOverN < best {
			best = twOverN
		}
		alt := decision.Alternative{
			Action:          fmt.Sprintf("N=%d", n),
			PredictedCost:   twOverN,
			OverheadSeconds: twOverN,
			Feasible:        true,
		}
		if n == res.N {
			chosen = alt
		} else {
			rejected = append(rejected, alt)
		}
	}
	measured := res.TwOverN.Seconds()
	regret := measured - best
	if regret < 0 {
		regret = 0
	}
	rec.RecordScored(decision.KindTune, decision.Outcome{
		Inputs: decision.Inputs{
			TwSeconds:    res.Tw.Seconds(),
			IterSeconds:  in.IterTime.Seconds(),
			Q:            in.MaxOverhead,
			N:            res.N,
			PayloadBytes: in.CheckpointBytes,
		},
		Chosen:   chosen,
		Rejected: rejected,
		Measured: measured,
		Regret:   regret,
		Outcome:  mode,
		Rank:     -1,
	})
}

// measureTw formats dev for (n, p) and runs n concurrent checkpoint streams,
// returning the mean per-checkpoint write time under full contention — the
// worst-case Tw of §3.4.
func measureTw(dev storage.Device, in Input, m int64, n, p, chunk, rounds int) (time.Duration, error) {
	dram := in.DRAMBudget
	if dram <= 0 {
		dram = 2 * m
	}
	eng, err := core.New(dev, core.Config{
		Concurrent:  n,
		SlotBytes:   m,
		Writers:     p,
		ChunkBytes:  chunk,
		DRAMBudget:  dram,
		PerWriterBW: in.PerWriterBW,
	})
	if err != nil {
		return 0, err
	}
	defer eng.Close()
	payload := make([]byte, m)

	var mu sync.Mutex
	var total time.Duration
	var count int
	var firstErr error
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				start := time.Now()
				_, err := eng.Checkpoint(context.Background(), core.BytesSource(payload))
				d := time.Since(start)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				total += d
				count++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	if count == 0 {
		return 0, fmt.Errorf("tuner: no measurements collected")
	}
	return total / time.Duration(count), nil
}

// Analyze is the model-only fallback for paper-scale workloads where real
// profiling is impractical: it evaluates the same search over the analytic
// model (perfmodel) instead of the device.
func Analyze(in Input, storageBW, perThreadBW float64) (Result, error) {
	if err := in.validate(); err != nil {
		return Result{}, err
	}
	if storageBW <= 0 {
		return Result{}, fmt.Errorf("tuner: storage bandwidth must be positive")
	}
	maxN := in.MaxN
	if maxN <= 0 {
		maxN = 8
	}
	if in.StorageBudget > 0 {
		if cap := perfmodel.MaxConcurrent(in.StorageBudget, in.CheckpointBytes); cap < maxN {
			maxN = cap
		}
	}
	if maxN < 1 {
		return Result{}, fmt.Errorf("tuner: storage budget below one checkpoint")
	}
	writers := in.Writers
	if writers <= 0 {
		writers = 1
		if perThreadBW > 0 {
			writers = int(math.Ceil(storageBW / perThreadBW))
			if writers > 4 {
				writers = 4
			}
		}
	}
	res := Result{Writers: writers, ChunkBytes: in.ChunkBytes, Profile: make(map[int]time.Duration)}
	bestTwOverN := time.Duration(math.MaxInt64)
	for n := 1; n <= maxN; n++ {
		params := perfmodel.Params{
			IterTime:        in.IterTime,
			CheckpointBytes: in.CheckpointBytes,
			StorageBW:       storageBW,
			PerThreadBW:     perThreadBW,
			N:               n,
			P:               writers,
			Interval:        1,
		}
		tw := params.Tw()
		res.Profile[n] = tw
		twOverN := tw / time.Duration(n)
		if float64(twOverN) < 0.95*float64(bestTwOverN) {
			bestTwOverN = twOverN
			res.N = n
			res.Tw = tw
		}
	}
	res.TwOverN = bestTwOverN
	f := math.Ceil(res.Tw.Seconds() / (float64(res.N) * in.MaxOverhead * in.IterTime.Seconds()))
	if f < 1 {
		f = 1
	}
	res.Interval = int(f)
	recordTune(in, res, "modeled")
	return res, nil
}
