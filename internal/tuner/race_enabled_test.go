//go:build race

package tuner

// raceEnabled gates wall-clock-sensitive profiling tests: the race
// detector's instrumentation overhead swamps the timing signal they assert
// on.
const raceEnabled = true
