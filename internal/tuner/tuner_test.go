package tuner

import (
	"fmt"
	"math"
	"testing"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/obs/decision"
	"pccheck/internal/perfmodel"
	"pccheck/internal/storage"
	"pccheck/internal/workload"
)

func TestInputValidation(t *testing.T) {
	dev := storage.NewRAM(1 << 20)
	bad := []Input{
		{CheckpointBytes: 100, MaxOverhead: 1.1},
		{IterTime: time.Millisecond, MaxOverhead: 1.1},
		{IterTime: time.Millisecond, CheckpointBytes: 100, MaxOverhead: 1.0},
	}
	for i, in := range bad {
		if _, err := Profile(dev, in); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestProfileUnthrottledExploitsConcurrency(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock profiling is unreliable under the race detector")
	}
	// On an unthrottled RAM device Tw barely grows with N, so the §3.4
	// objective min Tw/N is served by more concurrency: the tuner should
	// pick N > 1.
	const m = 64 << 10
	dev := storage.NewRAM(core.DeviceBytes(8, m))
	res, err := Profile(dev, Input{
		IterTime:        time.Millisecond,
		CheckpointBytes: m,
		MaxOverhead:     1.10,
		MaxN:            4,
		Rounds:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.N < 2 {
		t.Fatalf("N = %d; contention-free device should reward concurrency", res.N)
	}
	if res.Interval < 1 {
		t.Fatalf("interval = %d", res.Interval)
	}
	if len(res.Profile) != 4 {
		t.Fatalf("profiled %d candidates, want 4", len(res.Profile))
	}
}

func TestProfileThrottledFindsParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("bandwidth profiling is wall-clock heavy")
	}
	// Device at 40 MB/s aggregate; single writer limited to 12 MB/s.
	// One 1 MB checkpoint with 1 thread ⇒ ~83 ms, with 3+ threads ⇒ ~25 ms.
	// The tuner should pick p ≥ 2 and N such that Tw/N improves.
	const m = 1 << 20
	dev, err := storage.OpenSSD(t.TempDir()+"/dev", core.DeviceBytes(6, m),
		storage.WithSSDThrottle(storage.NewThrottle(40<<20)))
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	res, err := Profile(dev, Input{
		IterTime:        5 * time.Millisecond,
		CheckpointBytes: m,
		MaxOverhead:     1.05,
		MaxN:            3,
		Rounds:          2,
		PerWriterBW:     12 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Writers < 2 {
		t.Fatalf("writers = %d; per-thread limit should force parallel writers", res.Writers)
	}
	if res.Tw <= 0 || res.TwOverN <= 0 {
		t.Fatalf("degenerate measurements: %+v", res)
	}
}

func TestProfileRespectsStorageBudget(t *testing.T) {
	const m = 32 << 10
	dev := storage.NewRAM(core.DeviceBytes(8, m))
	res, err := Profile(dev, Input{
		IterTime:        time.Millisecond,
		CheckpointBytes: m,
		MaxOverhead:     1.2,
		StorageBudget:   3 * m, // S/m − 1 = 2
		Rounds:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n := range res.Profile {
		if n > 2 {
			t.Fatalf("profiled N=%d beyond storage budget cap 2", n)
		}
	}
}

func TestProfileTinyDevice(t *testing.T) {
	dev := storage.NewRAM(128)
	if _, err := Profile(dev, Input{
		IterTime:        time.Millisecond,
		CheckpointBytes: 1 << 20,
		MaxOverhead:     1.1,
	}); err == nil {
		t.Fatal("oversised checkpoint accepted")
	}
}

func TestAnalyzeMatchesEquation3(t *testing.T) {
	m, _ := workload.ByName("OPT-1.3B")
	res, err := Analyze(Input{
		IterTime:        m.IterTime,
		CheckpointBytes: m.CheckpointBytes,
		MaxOverhead:     1.05,
		MaxN:            4,
	}, workload.A100GCP.StorageWriteBW, workload.A100GCP.PerThreadWriteBW)
	if err != nil {
		t.Fatal(err)
	}
	// 0.8/0.22 = 3.6 ⇒ p = 4.
	if res.Writers != 4 {
		t.Fatalf("writers = %d, want 4", res.Writers)
	}
	// With p=4 one checkpoint nearly saturates the device, so Tw/N is flat
	// and the tie-break keeps a small N (1 or 2).
	if res.N > 2 {
		t.Fatalf("N = %d, want ≤ 2 when one lane saturates the device", res.N)
	}
	// The interval must satisfy Eq. (2): slowdown at f* ≤ q.
	// Tw(N) ≈ N·m/Ts, so f* ≈ m/(Ts·q·t) ≈ 16.2/(0.8·1.05·0.65) ≈ 30.
	if res.Interval < 25 || res.Interval > 40 {
		t.Fatalf("f* = %d, want ≈30", res.Interval)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(Input{IterTime: time.Second, CheckpointBytes: 1, MaxOverhead: 1.1}, 0, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if _, err := Analyze(Input{IterTime: time.Second, CheckpointBytes: 100, MaxOverhead: 1.1, StorageBudget: 50}, 1e9, 0); err == nil {
		t.Fatal("storage below one checkpoint accepted")
	}
}

func TestAnalyzeRespectsFixedWriters(t *testing.T) {
	res, err := Analyze(Input{
		IterTime:        time.Second,
		CheckpointBytes: 1 << 30,
		MaxOverhead:     1.1,
		Writers:         2,
		MaxN:            3,
	}, 1e9, 0.3e9)
	if err != nil {
		t.Fatal(err)
	}
	if res.Writers != 2 {
		t.Fatalf("writers = %d, want fixed 2", res.Writers)
	}
}

// Cross-validation between the two halves of the reproduction: the REAL
// engine's measured per-checkpoint write time on a bandwidth-throttled
// device must match the analytic model's Tw (§3.4) — the same formula the
// simulator uses — within tolerance, for several (N, p) configurations.
func TestRealTwMatchesAnalyticModel(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock bandwidth measurement")
	}
	const (
		m           = 1 << 20 // 1 MB checkpoints
		deviceBW    = 40 << 20
		perThreadBW = 11 << 20 // ~3.6 threads saturate, like the calibrated platforms
	)
	for _, tc := range []struct{ n, p int }{{1, 1}, {1, 4}, {2, 4}} {
		dev, err := storage.OpenSSD(t.TempDir()+"/dev", core.DeviceBytes(tc.n, m),
			storage.WithSSDThrottle(storage.NewThrottle(deviceBW)))
		if err != nil {
			t.Fatal(err)
		}
		measured, err := measureTw(dev, Input{PerWriterBW: perThreadBW}, m, tc.n, tc.p, m/4, 4)
		dev.Close()
		if err != nil {
			t.Fatal(err)
		}
		params := perfmodel.Params{
			IterTime:        time.Millisecond,
			CheckpointBytes: m,
			StorageBW:       deviceBW,
			PerThreadBW:     perThreadBW,
			N:               tc.n, P: tc.p, Interval: 1,
		}
		want := params.Tw()
		ratio := measured.Seconds() / want.Seconds()
		if ratio < 0.6 || ratio > 1.8 {
			t.Fatalf("N=%d p=%d: real Tw %v vs analytic %v (ratio %.2f)", tc.n, tc.p, measured, want, ratio)
		}
	}
}

// TestAnalyzeRecordsTuneDecision: with a decision recorder configured, the
// N* search records one tune decision — every candidate N a scored
// alternative with its Tw/N cost, and regret measuring the 5%
// smaller-N-on-ties preference.
func TestAnalyzeRecordsTuneDecision(t *testing.T) {
	rec := decision.New(decision.Config{TopK: 8}, nil)
	m, _ := workload.ByName("OPT-1.3B")
	res, err := Analyze(Input{
		IterTime:        m.IterTime,
		CheckpointBytes: m.CheckpointBytes,
		MaxOverhead:     1.05,
		MaxN:            4,
		Decisions:       rec,
	}, workload.A100GCP.StorageWriteBW, workload.A100GCP.PerThreadWriteBW)
	if err != nil {
		t.Fatal(err)
	}
	ds := rec.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	d := ds[0]
	if d.Kind != decision.KindTune || !d.Scored || d.Outcome != "modeled" {
		t.Fatalf("kind %v scored %v outcome %q, want a scored modeled tune", d.Kind, d.Scored, d.Outcome)
	}
	if want := fmt.Sprintf("N=%d", res.N); d.Chosen.Action != want {
		t.Errorf("chosen %q, want %q", d.Chosen.Action, want)
	}
	if len(d.Rejected) != 3 {
		t.Errorf("rejected = %d, want the 3 unchosen candidates of MaxN=4", len(d.Rejected))
	}
	if d.Regret < 0 {
		t.Errorf("regret %v, want ≥ 0", d.Regret)
	}
	// Regret is exactly the gap between the chosen Tw/N and the strict
	// minimum over the profile.
	best := math.MaxFloat64
	for n, tw := range res.Profile {
		if c := tw.Seconds() / float64(n); c < best {
			best = c
		}
	}
	if want := res.TwOverN.Seconds() - best; math.Abs(d.Regret-want) > 1e-12 {
		t.Errorf("regret %v, want the tie-preference gap %v", d.Regret, want)
	}
	if d.Inputs.N != res.N || d.Inputs.Q != 1.05 {
		t.Errorf("inputs %+v do not reflect the chosen configuration", d.Inputs)
	}
}

// Profile must record the same decision shape with the "profiled" outcome.
func TestProfileRecordsTuneDecision(t *testing.T) {
	rec := decision.New(decision.Config{}, nil)
	const m = 32 << 10
	dev := storage.NewRAM(core.DeviceBytes(2, m))
	if _, err := Profile(dev, Input{
		IterTime:        time.Millisecond,
		CheckpointBytes: m,
		MaxOverhead:     1.2,
		MaxN:            2,
		Writers:         1,
		Rounds:          1,
		Decisions:       rec,
	}); err != nil {
		t.Fatal(err)
	}
	ds := rec.Decisions()
	if len(ds) != 1 || ds[0].Kind != decision.KindTune || ds[0].Outcome != "profiled" {
		t.Fatalf("decisions = %+v, want one profiled tune", ds)
	}
	if len(ds[0].Rejected) != 1 {
		t.Errorf("rejected = %d, want the one unchosen N of MaxN=2", len(ds[0].Rejected))
	}
}
