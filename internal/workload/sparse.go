package workload

import "fmt"

// Sparse update patterns for delta-checkpoint evaluation. Full-model SGD
// touches every parameter every iteration, but many production training
// regimes mutate only a small fraction of the checkpointable state between
// checkpoints: embedding tables update only the rows of the batch's tokens,
// LoRA-style fine-tuning updates only adapter blocks, MoE routers update
// only the experts that saw traffic. These patterns parameterize the bench
// and crash-sweep workloads; DirtyFraction is the fraction of checkpoint
// bytes mutated between consecutive checkpoints, Ranges how many contiguous
// regions that dirt is scattered across.
type SparsePattern struct {
	// Name identifies the pattern in bench output and flags.
	Name string
	// DirtyFraction ∈ (0, 1] is the fraction of the checkpoint mutated
	// between two consecutive checkpoints.
	DirtyFraction float64
	// Ranges is how many contiguous dirty regions the mutations form; more
	// ranges at the same fraction means more scattered writes and more
	// chunks dirtied per byte.
	Ranges int
}

// SparseZoo lists the evaluated update patterns, densest first.
var SparseZoo = []SparsePattern{
	// Dense SGD: the adversarial case for delta checkpointing — every byte
	// changes, deltas degrade to keyframes (and the engine's size check
	// keeps them from costing more than full checkpoints).
	{Name: "dense-sgd", DirtyFraction: 1.0, Ranges: 1},
	// Embedding fine-tune: a batch touches ~2% of the table's rows.
	{Name: "embedding-hotset", DirtyFraction: 0.02, Ranges: 8},
	// LoRA adapters: frozen base model, ~5% trainable adapter blocks.
	{Name: "lora-adapters", DirtyFraction: 0.05, Ranges: 32},
	// MoE router + active experts: ~10% of state, scattered per expert.
	{Name: "moe-router", DirtyFraction: 0.10, Ranges: 16},
}

// SparseByName returns the pattern with the given name.
func SparseByName(name string) (SparsePattern, error) {
	for _, p := range SparseZoo {
		if p.Name == name {
			return p, nil
		}
	}
	return SparsePattern{}, fmt.Errorf("workload: unknown sparse pattern %q", name)
}

// Mutate applies one iteration's worth of updates to state in place using
// the supplied deterministic random source, returning the mutated ranges as
// {offset, length} pairs (the DirtyTracker feed). rnd(n) must return a
// uniform int in [0, n).
func (p SparsePattern) Mutate(state []byte, rnd func(int) int) [][2]int64 {
	if len(state) == 0 || p.Ranges <= 0 {
		return nil
	}
	dirtyBytes := int(float64(len(state)) * p.DirtyFraction)
	if dirtyBytes < p.Ranges {
		dirtyBytes = p.Ranges
	}
	if dirtyBytes > len(state) {
		dirtyBytes = len(state)
	}
	per := dirtyBytes / p.Ranges
	ranges := make([][2]int64, 0, p.Ranges)
	for r := 0; r < p.Ranges; r++ {
		span := per
		if span < 1 {
			span = 1
		}
		if span > len(state) {
			span = len(state)
		}
		off := rnd(len(state) - span + 1)
		for i := off; i < off+span; i++ {
			state[i] ^= byte(1 + rnd(255))
		}
		ranges = append(ranges, [2]int64{int64(off), int64(span)})
	}
	return ranges
}
