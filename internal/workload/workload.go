// Package workload defines the evaluated models (Table 3 of the paper) and
// the hardware platforms of §5.1, as the calibrated constants the simulator
// and figure harness consume.
//
// Checkpoint sizes and batch sizes are taken directly from Table 3.
// Per-iteration times are not tabulated in the paper; they are derived from
// the quantities the paper does report (VGG16's 60 ms iteration in §5.2.3,
// OPT-1.3B's recovery times in §5.2.2, throughput axes of Figure 8) and are
// recorded here as the calibration the reproduction uses. EXPERIMENTS.md
// discusses the sensitivity of each figure to these constants.
package workload

import (
	"fmt"
	"time"
)

// GB is one gigabyte in bytes (decimal, as storage vendors and the paper
// count).
const GB = 1_000_000_000

// Model describes one evaluated training workload.
type Model struct {
	// Name as used in the paper's figures.
	Name string
	// Dataset named in Table 3.
	Dataset string
	// Params is the approximate parameter count.
	Params int64
	// CheckpointBytes is the model+optimizer state size (Table 3).
	CheckpointBytes int64
	// IterTime is the per-iteration training time on the A100 platform
	// without checkpointing (calibrated, see package comment).
	IterTime time.Duration
	// IterTimeRTX is the per-iteration time on the Titan RTX PMEM machine
	// (lower compute capability, §5.2.4). Zero when the model does not fit.
	IterTimeRTX time.Duration
	// Nodes is the number of pipeline-parallel workers (1 = single GPU).
	Nodes int
	// BatchA100 and BatchRTX are the microbatch sizes from Table 3.
	BatchA100, BatchRTX int
}

// PartitionBytes is the checkpoint size each pipeline-parallel worker owns.
func (m Model) PartitionBytes() int64 { return m.CheckpointBytes / int64(m.Nodes) }

// Zoo lists the models of Table 3 plus OPT-350M (used by Figure 13).
var Zoo = []Model{
	{
		Name: "VGG16", Dataset: "ImageNet", Params: 138_000_000,
		CheckpointBytes: 1_100_000_000, // 1.1 GB
		IterTime:        60 * time.Millisecond,
		IterTimeRTX:     90 * time.Millisecond,
		Nodes:           1, BatchA100: 32, BatchRTX: 32,
	},
	{
		Name: "BERT", Dataset: "SQuAD", Params: 345_000_000,
		CheckpointBytes: 4 * GB,
		IterTime:        160 * time.Millisecond,
		IterTimeRTX:     320 * time.Millisecond,
		Nodes:           1, BatchA100: 3, BatchRTX: 3,
	},
	{
		Name: "TransformerXL", Dataset: "WikiText", Params: 192_000_000,
		CheckpointBytes: 2_700_000_000, // 2.7 GB
		IterTime:        250 * time.Millisecond,
		IterTimeRTX:     400 * time.Millisecond,
		Nodes:           1, BatchA100: 64, BatchRTX: 32,
	},
	{
		Name: "OPT-350M", Dataset: "WikiText", Params: 350_000_000,
		CheckpointBytes: 4_200_000_000,
		IterTime:        600 * time.Millisecond,
		Nodes:           1, BatchA100: 4,
	},
	{
		Name: "OPT-1.3B", Dataset: "WikiText", Params: 1_300_000_000,
		CheckpointBytes: 16_200_000_000, // 16.2 GB
		IterTime:        650 * time.Millisecond,
		Nodes:           1, BatchA100: 1,
	},
	{
		Name: "OPT-2.7B", Dataset: "WikiText", Params: 2_700_000_000,
		CheckpointBytes: 45 * GB,
		IterTime:        4 * time.Second,
		Nodes:           2, BatchA100: 1,
	},
	{
		Name: "BLOOM-7B", Dataset: "WikiText", Params: 7_000_000_000,
		CheckpointBytes: 108 * GB,
		IterTime:        4 * time.Second,
		Nodes:           6, BatchA100: 1,
	},
}

// ByName returns the model with the given name.
func ByName(name string) (Model, error) {
	for _, m := range Zoo {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("workload: unknown model %q", name)
}

// Platform captures the hardware constants of one evaluation setup (§5.1).
type Platform struct {
	// Name of the setup.
	Name string
	// PCIeBW is the effective device→host copy bandwidth, bytes/sec.
	PCIeBW float64
	// StorageWriteBW is the persistent device's aggregate write bandwidth.
	StorageWriteBW float64
	// StorageReadBW is the recovery-path read bandwidth.
	StorageReadBW float64
	// PerThreadWriteBW is the write bandwidth a single writer thread can
	// sustain; multiple threads are needed to saturate StorageWriteBW
	// (§3.4: "the number of writer threads per checkpoint is ideally 2 to
	// 4"; Figure 13).
	PerThreadWriteBW float64
	// NetBW is the inter-machine network bandwidth (Gemini's transport).
	NetBW float64
	// DiskAttach is the time to reattach the persistent disk to a fresh VM
	// after preemption (≈5.5 s in §5.2.3); zero for Gemini-style DRAM.
	DiskAttach time.Duration
	// IterScale multiplies model iteration times (1.0 on the A100 baseline).
	IterScale float64
}

// Platforms of the paper.
var (
	// A100GCP is the a2-highgpu-1g + 1 TB pd-ssd setup used for most figures.
	//
	// Calibration: the paper reports (a) torch.save+flush persists 16 GB in
	// 37 s ⇒ a single serialization stream achieves ≈0.44 GB/s, and (b) at
	// f=10 on OPT-1.3B, PCcheck sustains 0.5 iters/s — 16.2 GB per 10
	// iterations per 2 s ⇒ the device itself absorbs ≈0.8 GB/s when driven
	// by parallel raw writers. Both are encoded: StorageWriteBW is the raw
	// device rate; CheckFreqStreamFraction×StorageWriteBW reproduces the
	// torch.save stream.
	A100GCP = Platform{
		Name:             "a100-gcp-ssd",
		PCIeBW:           12 * GB, // PCIe3 x16 effective
		StorageWriteBW:   0.8 * GB,
		StorageReadBW:    1.2 * GB,
		PerThreadWriteBW: 0.22 * GB,
		NetBW:            1.875 * GB, // 15 Gbps measured in §5.2.1
		DiskAttach:       5500 * time.Millisecond,
		IterScale:        1.0,
	}

	// RTXPMEM is the Titan RTX + Optane AppDirect machine (§5.1, §5.2.4).
	// 4.01 GB/s is the paper's measured nt-store bandwidth; PCIe3 x8.
	RTXPMEM = Platform{
		Name:             "rtx-pmem",
		PCIeBW:           6 * GB,
		StorageWriteBW:   4.01 * GB,
		StorageReadBW:    6.0 * GB,
		PerThreadWriteBW: 1.2 * GB,
		NetBW:            1.875 * GB,
		DiskAttach:       0,
		IterScale:        1.0, // models carry explicit RTX iteration times
	}

	// H100Azure is the Standard_NC40ads_H100_v5 variant (§5.2.1): iteration
	// time halved, disk bandwidth doubled.
	H100Azure = Platform{
		Name:             "h100-azure-nvme",
		PCIeBW:           24 * GB,
		StorageWriteBW:   1.6 * GB,
		StorageReadBW:    2.4 * GB,
		PerThreadWriteBW: 0.44 * GB,
		NetBW:            1.875 * GB,
		DiskAttach:       5500 * time.Millisecond,
		IterScale:        0.5,
	}
)

// PlatformByName returns the calibrated platform with the given name.
func PlatformByName(name string) (Platform, error) {
	for _, p := range []Platform{A100GCP, RTXPMEM, H100Azure} {
		if p.Name == name {
			return p, nil
		}
	}
	return Platform{}, fmt.Errorf("workload: unknown platform %q (have %s, %s, %s)",
		name, A100GCP.Name, RTXPMEM.Name, H100Azure.Name)
}

// PMEMCLWBWriteBW is the paper's measured clwb-path bandwidth, kept for the
// §3.3 nt-store vs clwb comparison.
const PMEMCLWBWriteBW = 2.46 * GB

// Stream-efficiency calibration for the baselines' persist paths, relative
// to a device saturated by parallel raw writers.
//
// CheckFreqStreamFraction reproduces the paper's torch.save datum: a single
// serialization stream reaches 0.55×0.8 GB/s = 0.44 GB/s on the A100
// platform, i.e. 37 s for OPT-1.3B's 16.2 GB. Traditional checkpointing
// shares this path. GPMStreamFraction models GPM's direct kernel-store path:
// no serialization, but copy kernels move data slower than DMA engines —
// which is why GPM beats CheckFreq at extreme frequencies yet both trail
// PCcheck by up to ~1.9× per checkpoint (Figure 11).
const (
	CheckFreqStreamFraction = 0.55
	GPMStreamFraction       = 0.75
)

// CheckFreqCopyFraction models the snapshot phase of torch.save-style
// checkpointers: the device→host copy goes through pageable memory and
// Python serialization at roughly a quarter of the pinned-DMA rate
// (≈3 GB/s on PCIe3 x16). PCcheck instead registers pinned buffers and
// drives the copy engines directly (§3.3).
const CheckFreqCopyFraction = 0.25

// GeminiInterferenceFraction calibrates how badly a Gemini checkpoint
// transfer interferes with the training job's own pipeline-parallel network
// exchange on a slow (15 Gbps) interconnect: each checkpoint effectively
// stalls training for m/(fraction×NetBW) seconds on top of the transfer
// itself. 0.37 reproduces §5.2.1's reported BLOOM-7B slowdowns (1.65× at
// f=10, 1.08× at f=100); on fast RDMA fabrics — the setting Gemini was
// designed for — the interference would vanish.
const GeminiInterferenceFraction = 0.37

// IterTimeOn returns the model's per-iteration time on the given platform.
func (m Model) IterTimeOn(p Platform) time.Duration {
	if p.Name == RTXPMEM.Name {
		if m.IterTimeRTX > 0 {
			return m.IterTimeRTX
		}
		return 0 // does not fit on this machine
	}
	return time.Duration(float64(m.IterTime) * p.IterScale)
}
