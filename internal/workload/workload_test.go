package workload

import (
	"testing"
	"time"
)

func TestZooMatchesTable3(t *testing.T) {
	// Checkpoint sizes straight from Table 3 of the paper.
	want := map[string]int64{
		"VGG16":         1_100_000_000,
		"BERT":          4 * GB,
		"TransformerXL": 2_700_000_000,
		"OPT-1.3B":      16_200_000_000,
		"OPT-2.7B":      45 * GB,
		"BLOOM-7B":      108 * GB,
	}
	for name, size := range want {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("Table 3 model missing: %v", err)
		}
		if m.CheckpointBytes != size {
			t.Fatalf("%s checkpoint = %d, want %d", name, m.CheckpointBytes, size)
		}
	}
}

func TestBatchSizesMatchTable3(t *testing.T) {
	checks := []struct {
		name       string
		a100, rtx  int
		hasRTXTime bool
	}{
		{"VGG16", 32, 32, true},
		{"BERT", 3, 3, true},
		{"TransformerXL", 64, 32, true},
		{"OPT-1.3B", 1, 0, false},
	}
	for _, c := range checks {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if m.BatchA100 != c.a100 || m.BatchRTX != c.rtx {
			t.Fatalf("%s batches = %d/%d, want %d/%d", c.name, m.BatchA100, m.BatchRTX, c.a100, c.rtx)
		}
		if (m.IterTimeRTX > 0) != c.hasRTXTime {
			t.Fatalf("%s RTX availability wrong", c.name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("GPT-5"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDistributedPartitioning(t *testing.T) {
	bloom, _ := ByName("BLOOM-7B")
	if bloom.Nodes != 6 {
		t.Fatalf("BLOOM-7B nodes = %d, want 6", bloom.Nodes)
	}
	if got := bloom.PartitionBytes(); got != 18*GB {
		t.Fatalf("BLOOM-7B partition = %d, want 18 GB", got)
	}
	opt27, _ := ByName("OPT-2.7B")
	if opt27.Nodes != 2 || opt27.PartitionBytes() != 22_500_000_000 {
		t.Fatalf("OPT-2.7B partition = %d over %d nodes", opt27.PartitionBytes(), opt27.Nodes)
	}
	vgg, _ := ByName("VGG16")
	if vgg.PartitionBytes() != vgg.CheckpointBytes {
		t.Fatal("single-node partition should equal full checkpoint")
	}
}

func TestPlatformCalibration(t *testing.T) {
	// The paper's datum: 16 GB of OPT-1.3B state takes 37 s with torch.save
	// ⇒ the single-stream rate must land near 0.44 GB/s.
	persistTime := 16.2 * GB / (CheckFreqStreamFraction * A100GCP.StorageWriteBW)
	if persistTime < 33 || persistTime > 41 {
		t.Fatalf("OPT-1.3B persist time = %.1fs, paper says ≈37s", persistTime)
	}
	// PMEM nt-store bandwidth is the paper's measured 4.01 GB/s.
	if RTXPMEM.StorageWriteBW != 4.01*GB {
		t.Fatalf("PMEM write BW = %v", RTXPMEM.StorageWriteBW)
	}
	if PMEMCLWBWriteBW != 2.46*GB {
		t.Fatalf("clwb BW = %v", float64(PMEMCLWBWriteBW))
	}
	// Gemini's network: 15 Gbps.
	if A100GCP.NetBW != 1.875*GB {
		t.Fatalf("net BW = %v", A100GCP.NetBW)
	}
}

func TestH100ScalesFromA100(t *testing.T) {
	if H100Azure.StorageWriteBW != 2*A100GCP.StorageWriteBW {
		t.Fatal("H100 disk should be 2× A100 disk (§5.2.1)")
	}
	opt, _ := ByName("OPT-1.3B")
	a := opt.IterTimeOn(A100GCP)
	h := opt.IterTimeOn(H100Azure)
	if h != a/2 {
		t.Fatalf("H100 iteration %v, want half of %v", h, a)
	}
}

func TestIterTimeOnRTX(t *testing.T) {
	bert, _ := ByName("BERT")
	if got := bert.IterTimeOn(RTXPMEM); got != 320*time.Millisecond {
		t.Fatalf("BERT on RTX = %v", got)
	}
	bloom, _ := ByName("BLOOM-7B")
	if got := bloom.IterTimeOn(RTXPMEM); got != 0 {
		t.Fatalf("BLOOM-7B should not fit on RTX, got %v", got)
	}
}

func TestVGGIterationMatchesPaper(t *testing.T) {
	vgg, _ := ByName("VGG16")
	// §5.2.3: "VGG16 has the smallest iteration time (60 ms)".
	if vgg.IterTime != 60*time.Millisecond {
		t.Fatalf("VGG16 iteration = %v, want 60ms", vgg.IterTime)
	}
}

func TestPerThreadBandwidthNeedsFewThreads(t *testing.T) {
	// §3.4: 2–4 writer threads should saturate the device.
	for _, p := range []Platform{A100GCP, RTXPMEM, H100Azure} {
		threads := p.StorageWriteBW / p.PerThreadWriteBW
		if threads < 2 || threads > 4 {
			t.Fatalf("%s: %0.1f threads to saturate, want 2–4", p.Name, threads)
		}
	}
}

// Checkpoint sizes are consistent with the training state they must hold:
// fp32 parameters plus optimizer state — ≈8 B/param for SGD+momentum
// (VGG16) and ≈12 B/param for Adam (BERT, OPT) — with tokenizer/embedding
// overheads explaining the remainder.
func TestCheckpointSizesMatchOptimizerState(t *testing.T) {
	checks := []struct {
		model         string
		bytesPerParam float64
		tolerance     float64
	}{
		{"VGG16", 8, 0.15}, // SGD + momentum: weights + velocity
		{"BERT", 12, 0.15}, // Adam: weights + m + v
		{"OPT-1.3B", 12, 0.15},
		{"OPT-2.7B", 12, 0.40}, // larger slack: activations/offload buffers
		{"BLOOM-7B", 12, 0.40},
	}
	for _, c := range checks {
		m, err := ByName(c.model)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(m.CheckpointBytes) / float64(m.Params)
		if got < c.bytesPerParam*(1-c.tolerance) || got > c.bytesPerParam*(1+c.tolerance) {
			t.Fatalf("%s: %.1f bytes/param, want ≈%.0f", c.model, got, c.bytesPerParam)
		}
	}
}
