package workload

import (
	"math/rand"
	"testing"
)

func TestSparseByName(t *testing.T) {
	for _, p := range SparseZoo {
		got, err := SparseByName(p.Name)
		if err != nil {
			t.Fatalf("SparseByName(%q): %v", p.Name, err)
		}
		if got != p {
			t.Fatalf("SparseByName(%q) = %+v, want %+v", p.Name, got, p)
		}
	}
	if _, err := SparseByName("no-such-pattern"); err == nil {
		t.Fatal("SparseByName on an unknown name: want error, got nil")
	}
}

func TestSparseMutateRangesCoverChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rnd := func(n int) int { return rng.Intn(n) }
	for _, p := range SparseZoo {
		state := make([]byte, 64<<10)
		rng.Read(state)
		before := append([]byte(nil), state...)

		ranges := p.Mutate(state, rnd)
		if len(ranges) != p.Ranges {
			t.Fatalf("%s: %d ranges, want %d", p.Name, len(ranges), p.Ranges)
		}
		dirty := make([]bool, len(state))
		for _, r := range ranges {
			off, n := r[0], r[1]
			if off < 0 || n < 1 || off+n > int64(len(state)) {
				t.Fatalf("%s: range [%d,+%d) out of bounds", p.Name, off, n)
			}
			for i := off; i < off+n; i++ {
				dirty[i] = true
			}
		}
		changed := 0
		for i := range state {
			if state[i] != before[i] {
				if !dirty[i] {
					t.Fatalf("%s: byte %d changed outside the reported ranges", p.Name, i)
				}
				changed++
			}
		}
		if changed == 0 {
			t.Fatalf("%s: Mutate changed nothing", p.Name)
		}
		// The reported dirty volume should track the pattern's fraction:
		// never more than the fraction plus overlap slack, and nonzero.
		var dirtyBytes int64
		for _, r := range ranges {
			dirtyBytes += r[1]
		}
		if max := int64(float64(len(state))*p.DirtyFraction) + int64(p.Ranges); dirtyBytes > max {
			t.Fatalf("%s: %d dirty bytes reported, want ≤ %d", p.Name, dirtyBytes, max)
		}
	}
}

func TestSparseMutateEmptyState(t *testing.T) {
	p := SparseZoo[1]
	if got := p.Mutate(nil, func(int) int { return 0 }); got != nil {
		t.Fatalf("Mutate(nil) = %v, want nil", got)
	}
	// A 1-byte state: every range must degrade to [0, +1) without panicking.
	one := []byte{42}
	ranges := p.Mutate(one, func(int) int { return 0 })
	if len(ranges) != p.Ranges {
		t.Fatalf("Mutate on a 1-byte state: %d ranges, want %d", len(ranges), p.Ranges)
	}
	for _, r := range ranges {
		if r != [2]int64{0, 1} {
			t.Fatalf("Mutate on a 1-byte state: range %v, want [0 1]", r)
		}
	}
}
