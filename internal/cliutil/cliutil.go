// Package cliutil holds the small formatting/parsing helpers shared by the
// command-line tools.
package cliutil

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseBytes parses human-friendly sizes: "64MB", "1.5GB", "10KB", "128B",
// or a bare number of bytes. Units are decimal (matching how the paper and
// storage vendors count).
func ParseBytes(s string) (int64, error) {
	if strings.TrimSpace(s) == "" {
		return 0, fmt.Errorf("cliutil: empty size")
	}
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	switch {
	case strings.HasSuffix(upper, "GB"):
		mult, upper = 1_000_000_000, strings.TrimSuffix(upper, "GB")
	case strings.HasSuffix(upper, "MB"):
		mult, upper = 1_000_000, strings.TrimSuffix(upper, "MB")
	case strings.HasSuffix(upper, "KB"):
		mult, upper = 1_000, strings.TrimSuffix(upper, "KB")
	case strings.HasSuffix(upper, "B"):
		upper = strings.TrimSuffix(upper, "B")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(upper), 64)
	if err != nil {
		return 0, fmt.Errorf("cliutil: bad size %q", s)
	}
	return int64(v * float64(mult)), nil
}

// FormatBytes renders a byte count with a decimal unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2f GB", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2f MB", float64(n)/1e6)
	case n >= 1_000:
		return fmt.Sprintf("%.2f KB", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
