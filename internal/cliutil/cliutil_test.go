package cliutil

import "testing"

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"1GB", 1_000_000_000, true},
		{"1.5GB", 1_500_000_000, true},
		{"64MB", 64_000_000, true},
		{"10KB", 10_000, true},
		{"128B", 128, true},
		{"42", 42, true},
		{" 2 mb ", 2_000_000, true},
		{"", 0, false},
		{"GB", 0, false},
		{"twelve", 0, false},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseBytes(%q) accepted", c.in)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{512, "512 B"},
		{2_000, "2.00 KB"},
		{3_500_000, "3.50 MB"},
		{1_200_000_000, "1.20 GB"},
	}
	for _, c := range cases {
		if got := FormatBytes(c.in); got != c.want {
			t.Fatalf("FormatBytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRoundTripish(t *testing.T) {
	for _, n := range []int64{1, 999, 1000, 1_000_000, 2_500_000_000} {
		parsed, err := ParseBytes(FormatBytes(n))
		if err != nil {
			t.Fatalf("FormatBytes(%d) unparseable: %v", n, err)
		}
		// Formatting rounds to 2 decimals; allow 1% slack.
		diff := parsed - n
		if diff < 0 {
			diff = -diff
		}
		if diff*100 > n {
			t.Fatalf("round trip %d -> %q -> %d", n, FormatBytes(n), parsed)
		}
	}
}
