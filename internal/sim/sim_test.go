package sim

import (
	"testing"

	"pccheck/internal/perfmodel"
	"pccheck/internal/workload"
)

func mustModel(t *testing.T, name string) workload.Model {
	t.Helper()
	m, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func runOrDie(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sim %v/%s f=%d: %v", cfg.Algo, cfg.Model.Name, cfg.Interval, err)
	}
	return res
}

func TestIdealHasNoOverhead(t *testing.T) {
	res := runOrDie(t, Config{
		Algo:     perfmodel.Ideal,
		Model:    mustModel(t, "VGG16"),
		Platform: workload.A100GCP,
	})
	if res.Slowdown < 0.999999 || res.Slowdown > 1.000001 {
		t.Fatalf("ideal slowdown = %v", res.Slowdown)
	}
	if len(res.Checkpoints) != 0 {
		t.Fatalf("ideal produced %d checkpoints", len(res.Checkpoints))
	}
}

// The paper's own throughput datum (§5.2.3): OPT-1.3B at f=10, PCcheck
// sustains ≈0.5 iters/s and CheckFreq ≈0.256 iters/s. The simulator must
// land within 20%.
func TestOPT13BThroughputMatchesPaper(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	pc := runOrDie(t, Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 10, Concurrent: 2, Writers: 3,
	})
	if pc.Throughput < 0.40 || pc.Throughput > 0.60 {
		t.Fatalf("PCcheck throughput = %.3f iters/s, paper ≈0.5", pc.Throughput)
	}
	cf := runOrDie(t, Config{
		Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP,
		Interval: 10,
	})
	if cf.Throughput < 0.20 || cf.Throughput > 0.31 {
		t.Fatalf("CheckFreq throughput = %.3f iters/s, paper ≈0.256", cf.Throughput)
	}
}

// Figure 8a: CheckFreq on VGG16 slows training ≈57× at f=1 and ≈1.19× at
// f=100.
func TestVGG16CheckFreqExtremes(t *testing.T) {
	model := mustModel(t, "VGG16")
	f1 := runOrDie(t, Config{
		Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP, Interval: 1,
	})
	if f1.Slowdown < 30 || f1.Slowdown > 90 {
		t.Fatalf("CheckFreq f=1 slowdown = %.1f, paper ≈57", f1.Slowdown)
	}
	f100 := runOrDie(t, Config{
		Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP, Interval: 100,
	})
	if f100.Slowdown > 1.35 {
		t.Fatalf("CheckFreq f=100 slowdown = %.2f, paper ≈1.19", f100.Slowdown)
	}
}

// PCcheck must dominate CheckFreq at every frequency, and everyone converges
// to ideal at infrequent checkpointing (Figure 8 shape).
func TestPCcheckDominatesCheckFreq(t *testing.T) {
	for _, name := range []string{"VGG16", "BERT", "OPT-1.3B"} {
		model := mustModel(t, name)
		for _, f := range []int{1, 10, 25, 50, 100} {
			pc := runOrDie(t, Config{
				Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
				Interval: f, Concurrent: 2, Writers: 3,
			})
			cf := runOrDie(t, Config{
				Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP,
				Interval: f,
			})
			if pc.Slowdown > cf.Slowdown*1.02 {
				t.Fatalf("%s f=%d: PCcheck %.2f slower than CheckFreq %.2f", name, f, pc.Slowdown, cf.Slowdown)
			}
		}
		pc100 := runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: 100, Concurrent: 2, Writers: 3,
		})
		if pc100.Slowdown > 1.06 {
			t.Fatalf("%s: PCcheck f=100 slowdown = %.3f, want ≈1", name, pc100.Slowdown)
		}
	}
}

// PCcheck checkpoints every 10 iterations with small overhead whenever the
// workload's checkpoint-byte demand fits the device (abstract: "as
// frequently as every 10 iterations ... minimal (3%) overhead"). OPT-350M at
// f=10 demands 4.2 GB/6 s = 0.7 GB/s against a 0.8 GB/s device; BLOOM-7B's
// per-node partition demands 0.45 GB/s. (BERT at f=10 would demand
// 2.5 GB/s — physically impossible for *any* mechanism on this disk, which
// is why Figure 8b's f=10 points all sit far from ideal.)
func TestPCcheckFrequentCheckpointingCheap(t *testing.T) {
	for _, name := range []string{"OPT-350M", "BLOOM-7B"} {
		res := runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: mustModel(t, name), Platform: workload.A100GCP,
			Interval: 10, Concurrent: 4, Writers: 4,
		})
		if res.Slowdown > 1.10 {
			t.Fatalf("%s f=10 PCcheck slowdown = %.3f, want ≤1.10", name, res.Slowdown)
		}
	}
}

// §5.2.1: GPM beats CheckFreq when checkpointing every iteration (its direct
// path avoids the serialization stream), but loses at lower frequencies
// where CheckFreq hides the persist behind training.
func TestGPMvsCheckFreqCrossover(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	gpm1 := runOrDie(t, Config{Algo: perfmodel.GPM, Model: model, Platform: workload.A100GCP, Interval: 1})
	cf1 := runOrDie(t, Config{Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP, Interval: 1})
	if gpm1.Slowdown >= cf1.Slowdown {
		t.Fatalf("f=1: GPM %.1f should beat CheckFreq %.1f", gpm1.Slowdown, cf1.Slowdown)
	}
	gpm50 := runOrDie(t, Config{Algo: perfmodel.GPM, Model: model, Platform: workload.A100GCP, Interval: 50})
	cf50 := runOrDie(t, Config{Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP, Interval: 50})
	if gpm50.Slowdown <= cf50.Slowdown {
		t.Fatalf("f=50: CheckFreq %.2f should beat GPM %.2f", cf50.Slowdown, gpm50.Slowdown)
	}
	// §5.2.1's specific datum: at f=50 on OPT-1.3B, GPM ≈1.9×, CheckFreq
	// ≈1.17×, PCcheck ≈1.02×.
	if gpm50.Slowdown < 1.3 || gpm50.Slowdown > 2.5 {
		t.Fatalf("GPM f=50 slowdown = %.2f, paper ≈1.9", gpm50.Slowdown)
	}
	pc50 := runOrDie(t, Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 50, Concurrent: 2, Writers: 3,
	})
	if pc50.Slowdown > 1.10 {
		t.Fatalf("PCcheck f=50 slowdown = %.3f, paper ≈1.02", pc50.Slowdown)
	}
}

// Traditional checkpointing is the worst mechanism at any frequency.
func TestTraditionalIsWorst(t *testing.T) {
	model := mustModel(t, "BERT")
	tr := runOrDie(t, Config{Algo: perfmodel.Traditional, Model: model, Platform: workload.A100GCP, Interval: 10})
	cf := runOrDie(t, Config{Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP, Interval: 10})
	if tr.Slowdown < cf.Slowdown {
		t.Fatalf("Traditional %.2f beat CheckFreq %.2f", tr.Slowdown, cf.Slowdown)
	}
}

// Figure 12 shape: on VGG16, more concurrent checkpoints help up to ~4, then
// saturate.
func TestConcurrencySensitivity(t *testing.T) {
	model := mustModel(t, "VGG16")
	slow := func(n int) float64 {
		return runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: 10, Concurrent: n, Writers: 2,
		}).Slowdown
	}
	s1, s2, s4, s8 := slow(1), slow(2), slow(4), slow(8)
	if s2 >= s1 {
		t.Fatalf("N=2 (%.2f) should beat N=1 (%.2f)", s2, s1)
	}
	if s4 > s2*1.02 {
		t.Fatalf("N=4 (%.2f) should not lose to N=2 (%.2f)", s4, s2)
	}
	// Beyond saturation: no meaningful further gain.
	if s8 < s4*0.90 {
		t.Fatalf("N=8 (%.2f) gained too much over N=4 (%.2f); device should be saturated", s8, s4)
	}
}

// Figure 13 shape: more writer threads per checkpoint help, with diminishing
// returns as N grows.
func TestWriterSensitivity(t *testing.T) {
	model := mustModel(t, "OPT-350M")
	slow := func(n, p int) float64 {
		return runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: 10, Concurrent: n, Writers: p,
		}).Slowdown
	}
	gain1 := slow(1, 1) / slow(1, 3)
	gain3 := slow(3, 1) / slow(3, 3)
	if gain1 < 1.15 {
		t.Fatalf("N=1: 3 writers gained only %.2f×, paper ≈1.36×", gain1)
	}
	if gain3 > gain1 {
		t.Fatalf("thread gains should shrink with N: N=1 %.2f vs N=3 %.2f", gain1, gain3)
	}
}

// Figure 14 shape: halving the DRAM budget to m costs little (≤ ~10%), and
// pipelining is at least as good as whole-checkpoint staging.
func TestDRAMSensitivity(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	m := model.CheckpointBytes
	run := func(dram int64, chunks int) Result {
		return runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: 15, Concurrent: 2, Writers: 3,
			DRAMBytes: dram, Chunks: chunks,
		})
	}
	full := run(2*m, 6)
	tight := run(m, 6)
	if tight.Throughput < 0.88*full.Throughput {
		t.Fatalf("DRAM m throughput %.3f vs 2m %.3f: more than 12%% loss", tight.Throughput, full.Throughput)
	}
	staged := run(2*m, 1)
	piped := run(2*m, 6)
	if piped.Throughput < staged.Throughput*0.999 {
		t.Fatalf("pipelining (%.3f) lost to staging (%.3f)", piped.Throughput, staged.Throughput)
	}
}

// The simulator and the analytic model must agree where the model applies:
// PCcheck's asymptotic slowdown ≈ max(1, Tw/(N·f·t)).
func TestSimulatorMatchesAnalyticModel(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	for _, f := range []int{5, 20, 60} {
		res := runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: f, Concurrent: 2, Writers: 4, Iterations: 3000,
		})
		params := perfmodel.Params{
			IterTime:        model.IterTime,
			CheckpointBytes: model.CheckpointBytes,
			StorageBW:       workload.A100GCP.StorageWriteBW,
			PerThreadBW:     workload.A100GCP.PerThreadWriteBW,
			N:               2, P: 4, Interval: f,
		}
		want, err := params.Slowdown()
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.Slowdown / want
		if ratio < 0.85 || ratio > 1.35 {
			t.Fatalf("f=%d: simulated %.3f vs analytic %.3f (ratio %.2f)", f, res.Slowdown, want, ratio)
		}
	}
}

// Figure 11 shape: per-checkpoint persist latency — Gemini (network, no
// disk) < PCcheck < GPM/CheckFreq, with PCcheck up to ~1.9× faster than
// CheckFreq.
func TestPersistLatencyOrdering(t *testing.T) {
	model := mustModel(t, "BERT") // 4 GB, single node so Gemini≡net transfer
	avg := func(algo perfmodel.Algorithm) float64 {
		cfg := Config{
			Algo: algo, Model: model, Platform: workload.A100GCP,
			Interval: 100, Concurrent: 1, Writers: 4, Iterations: 1000,
		}
		return runOrDie(t, cfg).AvgPersist
	}
	gem := avg(perfmodel.Gemini)
	pc := avg(perfmodel.PCcheck)
	cf := avg(perfmodel.CheckFreq)
	gpm := avg(perfmodel.GPM)
	if !(gem < pc && pc < gpm && gpm < cf) {
		t.Fatalf("persist latency ordering broken: gemini %.1f, pccheck %.1f, gpm %.1f, checkfreq %.1f",
			gem, pc, gpm, cf)
	}
	if ratio := cf / pc; ratio < 1.4 || ratio > 2.4 {
		t.Fatalf("CheckFreq/PCcheck persist ratio = %.2f, paper ≤ ~1.9", ratio)
	}
}

// Distributed models persist per-node partitions: BLOOM-7B's 108 GB over 6
// nodes behaves like 18 GB locally.
func TestDistributedPartitioning(t *testing.T) {
	bloom := mustModel(t, "BLOOM-7B")
	res := runOrDie(t, Config{
		Algo: perfmodel.PCcheck, Model: bloom, Platform: workload.A100GCP,
		Interval: 10, Concurrent: 2, Writers: 3, Iterations: 600,
	})
	// Abstract/§5.2.1: BLOOM-7B at f=10 within a few percent of ideal.
	if res.Slowdown > 1.10 {
		t.Fatalf("BLOOM-7B f=10 slowdown = %.3f, paper <1.05", res.Slowdown)
	}
	// Gemini on the same workload is far worse over a 15 Gbps network
	// (§5.2.1: 1.65–1.08× for f=10..100).
	gem := runOrDie(t, Config{
		Algo: perfmodel.Gemini, Model: bloom, Platform: workload.A100GCP,
		Interval: 10, Iterations: 600,
	})
	if gem.Slowdown < 1.4 || gem.Slowdown > 2.0 {
		t.Fatalf("Gemini BLOOM-7B f=10 slowdown = %.3f, paper ≈1.65", gem.Slowdown)
	}
	gem100 := runOrDie(t, Config{
		Algo: perfmodel.Gemini, Model: bloom, Platform: workload.A100GCP,
		Interval: 100, Iterations: 1200,
	})
	if gem100.Slowdown > 1.15 {
		t.Fatalf("Gemini BLOOM-7B f=100 slowdown = %.3f, paper ≈1.08", gem100.Slowdown)
	}
	if gem.Slowdown < res.Slowdown {
		t.Fatal("Gemini should trail PCcheck on a slow network")
	}
}

// Lag (lost work at a random failure instant) grows with the checkpoint
// interval and with concurrency (§5.2.3's rollback effect).
func TestMeanLagBehaviour(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	lag := func(f, n int) float64 {
		return runOrDie(t, Config{
			Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
			Interval: f, Concurrent: n, Writers: 3, Iterations: 2000,
		}).MeanLagIters
	}
	if l10, l50 := lag(10, 2), lag(50, 2); l50 <= l10 {
		t.Fatalf("lag should grow with interval: f=10 %.1f vs f=50 %.1f", l10, l50)
	}
	if l2, l6 := lag(10, 2), lag(10, 6); l6 < l2*0.95 {
		t.Fatalf("more in-flight checkpoints should not reduce rollback: N=2 %.1f vs N=6 %.1f", l2, l6)
	}
}

func TestRunValidation(t *testing.T) {
	bloom := mustModel(t, "BLOOM-7B")
	if _, err := Run(Config{Algo: perfmodel.PCcheck, Model: bloom, Platform: workload.RTXPMEM, Interval: 10}); err == nil {
		t.Fatal("BLOOM-7B on the RTX machine should be rejected (does not fit)")
	}
}

// Figure 10: on PMEM the device is ~5× faster, so every mechanism's overhead
// shrinks, but PCcheck still dominates.
func TestPMEMPlatform(t *testing.T) {
	bert := mustModel(t, "BERT")
	pcSSD := runOrDie(t, Config{
		Algo: perfmodel.PCcheck, Model: bert, Platform: workload.A100GCP,
		Interval: 10, Concurrent: 2, Writers: 3,
	})
	pcPMEM := runOrDie(t, Config{
		Algo: perfmodel.PCcheck, Model: bert, Platform: workload.RTXPMEM,
		Interval: 10, Concurrent: 2, Writers: 3,
	})
	cfPMEM := runOrDie(t, Config{
		Algo: perfmodel.CheckFreq, Model: bert, Platform: workload.RTXPMEM, Interval: 10,
	})
	if pcPMEM.Slowdown >= pcSSD.Slowdown {
		t.Fatalf("PMEM should cut PCcheck's overhead: %.3f vs SSD %.3f", pcPMEM.Slowdown, pcSSD.Slowdown)
	}
	if pcPMEM.Slowdown > cfPMEM.Slowdown*1.02 {
		t.Fatalf("PCcheck (%.3f) should still beat CheckFreq (%.3f) on PMEM", pcPMEM.Slowdown, cfPMEM.Slowdown)
	}
}

func TestNonPipelinedNeedsFullBuffer(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	_, err := Run(Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 15, Chunks: 1, DRAMBytes: model.CheckpointBytes / 2,
	})
	if err == nil {
		t.Fatal("undersized non-pipelined DRAM budget accepted")
	}
}
