package sim

import (
	"fmt"
	"math"
	"sort"

	"pccheck/internal/perfmodel"
	"pccheck/internal/workload"
)

// Config describes one simulated training run with checkpointing.
type Config struct {
	// Algo selects the checkpointing mechanism.
	Algo perfmodel.Algorithm
	// Model is the workload (checkpoint size, iteration time, nodes).
	Model workload.Model
	// Platform supplies the hardware constants.
	Platform workload.Platform
	// Interval is f, in iterations. Required unless Algo == Ideal.
	Interval int
	// Concurrent is N (PCcheck only; baselines are pinned to 1). Default 2.
	Concurrent int
	// Writers is p, parallel writer threads per checkpoint (PCcheck).
	// Default 3.
	Writers int
	// Chunks is the pipeline depth: >1 overlaps the device→DRAM copy with
	// persisting (Figure 7); 1 stages the whole checkpoint first. Default 4.
	Chunks int
	// DRAMBytes is M, the staging-memory budget. 0 ⇒ 2m (the paper's
	// default, §5.2.1).
	DRAMBytes int64
	// Iterations is A. 0 picks a steady-state length automatically.
	Iterations int
}

func (c Config) withDefaults() Config {
	if c.Concurrent <= 0 {
		c.Concurrent = 2
	}
	if c.Algo != perfmodel.PCcheck {
		c.Concurrent = 1
	}
	if c.Writers <= 0 {
		c.Writers = 3
	}
	if c.Chunks <= 0 {
		c.Chunks = 4
	}
	if c.Interval <= 0 {
		c.Interval = 1
	}
	if c.DRAMBytes <= 0 {
		c.DRAMBytes = 2 * c.Model.PartitionBytes()
	}
	if c.Iterations <= 0 {
		c.Iterations = 40 * c.Interval * c.Concurrent
		if c.Iterations < 400 {
			c.Iterations = 400
		}
		if c.Iterations > 8000 {
			c.Iterations = 8000
		}
	}
	return c
}

// CheckpointRecord traces one checkpoint through the simulated pipeline.
type CheckpointRecord struct {
	// Iteration is the training step whose state the checkpoint holds.
	Iteration int
	// Start is when the snapshot was initiated (virtual seconds).
	Start float64
	// CopyEnd is when the device→DRAM copy finished.
	CopyEnd float64
	// PersistEnd is when the checkpoint became durable (for Gemini: fully
	// received by the remote peer).
	PersistEnd float64
}

// Result summarizes a simulated run.
type Result struct {
	// Runtime is the virtual wall time for all iterations, including
	// waiting for the last checkpoint (the paper's trailing Tw term).
	Runtime float64
	// BaseRuntime is A·t, the no-checkpoint runtime.
	BaseRuntime float64
	// Throughput is iterations per second including checkpoint overhead.
	Throughput float64
	// Slowdown is Runtime/BaseRuntime (≥ 1).
	Slowdown float64
	// StallSeconds is the total time training was blocked on checkpointing.
	StallSeconds float64
	// Checkpoints traces every checkpoint.
	Checkpoints []CheckpointRecord
	// AvgPersist is the mean Start→PersistEnd latency (Figure 11/13's
	// per-checkpoint time).
	AvgPersist float64
	// MeanLagIters is the expected number of iterations of lost work if a
	// failure strikes at a uniformly random instant: E[completed(τ) −
	// latestDurable(τ)].
	MeanLagIters float64
}

// Run simulates the configured training run and returns its metrics.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	t := cfg.Model.IterTimeOn(cfg.Platform).Seconds()
	if t <= 0 {
		return Result{}, fmt.Errorf("sim: %s does not run on platform %s", cfg.Model.Name, cfg.Platform.Name)
	}
	m := float64(cfg.Model.PartitionBytes())
	if m <= 0 {
		return Result{}, fmt.Errorf("sim: model %s has no checkpoint payload", cfg.Model.Name)
	}
	if cfg.Chunks == 1 && float64(cfg.DRAMBytes) < m {
		return Result{}, fmt.Errorf("sim: non-pipelined staging needs a DRAM budget of at least one checkpoint (%v < %v)",
			cfg.DRAMBytes, int64(m))
	}
	e := &engine{
		cfg:   cfg,
		t:     t,
		m:     m,
		pcie:  NewResource("pcie", cfg.Platform.PCIeBW),
		store: NewResource("store", cfg.Platform.StorageWriteBW),
		net:   NewResource("net", cfg.Platform.NetBW),
		dramM: float64(cfg.DRAMBytes),
	}
	return e.run()
}

// simCkpt is one in-flight checkpoint inside the engine.
type simCkpt struct {
	rec        *CheckpointRecord
	copyJob    *Job
	persistJob *Job // on store (or net for Gemini); nil until started
	copyDone   bool
	done       bool
	// pipelined checkpoints stage through DRAM chunks: the device→DRAM copy
	// may lead the persist by at most `lead` bytes (the headroom the chunk
	// pool had when the checkpoint started). Non-pipelined checkpoints hold
	// a full m-byte buffer from copy start to persist end.
	pipelined bool
	lead      float64
}

type engine struct {
	cfg   Config
	t     float64
	m     float64
	now   float64
	steps int64
	pcie  *Resource
	store *Resource
	net   *Resource
	dramM float64

	active  []*simCkpt
	records []CheckpointRecord
	stall   float64

	iterEnd []float64 // completion time of each iteration
}

func (e *engine) persistResource() *Resource {
	if e.cfg.Algo == perfmodel.Gemini {
		return e.net
	}
	return e.store
}

// persistCap is the per-checkpoint write-rate cap for the configured
// mechanism.
func (e *engine) persistCap() float64 {
	switch e.cfg.Algo {
	case perfmodel.PCcheck:
		return float64(e.cfg.Writers) * e.cfg.Platform.PerThreadWriteBW
	case perfmodel.CheckFreq, perfmodel.Traditional:
		return workload.CheckFreqStreamFraction * e.cfg.Platform.StorageWriteBW
	case perfmodel.GPM:
		return workload.GPMStreamFraction * e.cfg.Platform.StorageWriteBW
	case perfmodel.Gemini:
		return 0 // the NIC itself is the limit
	default:
		return 0
	}
}

func (e *engine) run() (Result, error) {
	cfg := e.cfg
	A := cfg.Iterations
	e.iterEnd = make([]float64, 0, A)
	for i := 0; i < A; i++ {
		// Compute phase of iteration i.
		if err := e.advanceTo(e.now + e.t); err != nil {
			return Result{}, err
		}
		// Update gate: the weight update cannot overwrite state that an
		// in-flight snapshot copy is still reading (§3.1's T→U stall).
		if err := e.waitCopiesDone(); err != nil {
			return Result{}, err
		}
		e.iterEnd = append(e.iterEnd, e.now)

		if cfg.Algo == perfmodel.Ideal || (i+1)%cfg.Interval != 0 {
			continue
		}
		if err := e.initiate(i + 1); err != nil {
			return Result{}, err
		}
	}
	// Trailing term: the run is not over until the last checkpoint lands.
	if err := e.waitAll(); err != nil {
		return Result{}, err
	}

	res := Result{
		Runtime:     e.now,
		BaseRuntime: float64(A) * e.t,
		Checkpoints: e.records,
	}
	res.Throughput = float64(A) / res.Runtime
	res.Slowdown = res.Runtime / res.BaseRuntime
	res.StallSeconds = e.stall
	if n := len(e.records); n > 0 {
		var sum float64
		for _, r := range e.records {
			sum += r.PersistEnd - r.Start
		}
		res.AvgPersist = sum / float64(n)
	}
	res.MeanLagIters = e.meanLag()
	return res, nil
}

// initiate starts the checkpoint for the state after `iter` iterations,
// blocking (stalling training) per the mechanism's admission rule.
func (e *engine) initiate(iter int) error {
	cfg := e.cfg
	before := e.now
	switch cfg.Algo {
	case perfmodel.Traditional:
		// Fully synchronous: copy, then persist, training blocked.
		if err := e.startCheckpoint(iter, false); err != nil {
			return err
		}
		if err := e.waitAll(); err != nil {
			return err
		}
	case perfmodel.GPM:
		// Direct device→storage persist, training blocked throughout; no
		// DRAM staging and no separate copy phase.
		rec := &CheckpointRecord{Iteration: iter, Start: e.now}
		job, err := e.store.Submit(e.now, e.m, e.persistCap())
		if err != nil {
			return err
		}
		ck := &simCkpt{rec: rec, persistJob: job, copyDone: true}
		rec.CopyEnd = e.now
		e.active = append(e.active, ck)
		if err := e.waitAll(); err != nil {
			return err
		}
	case perfmodel.CheckFreq, perfmodel.Gemini:
		// One in flight: wait for the previous checkpoint to finish fully.
		if err := e.waitInflightBelow(1); err != nil {
			return err
		}
		if err := e.startCheckpoint(iter, false); err != nil {
			return err
		}
		if cfg.Algo == perfmodel.Gemini {
			// Checkpoint traffic contends with the training job's own
			// pipeline-parallel exchange on the shared NIC; on a 15 Gbps
			// network that interference directly slows training
			// (§2.2/§5.2.1). Modelled as a per-checkpoint stall calibrated
			// by workload.GeminiInterferenceFraction.
			stall := e.m / (workload.GeminiInterferenceFraction * e.cfg.Platform.NetBW)
			if err := e.advanceTo(e.now + stall); err != nil {
				return err
			}
		}
	case perfmodel.PCcheck:
		// Up to N in flight; block only when all slots are busy.
		if err := e.waitInflightBelow(cfg.Concurrent); err != nil {
			return err
		}
		if err := e.startCheckpoint(iter, cfg.Chunks > 1); err != nil {
			return err
		}
	default:
		return fmt.Errorf("sim: cannot simulate algorithm %v", cfg.Algo)
	}
	e.stall += e.now - before
	return nil
}

// startCheckpoint launches the snapshot copy (and, if pipelined, the persist
// alongside it). For non-pipelined mechanisms the persist starts when the
// copy completes (handled in processEvents).
//
// The DRAM budget enters as a copy *lead*: a pipelined checkpoint may have
// at most `lead` bytes staged-but-unpersisted, where lead is the chunk
// pool's headroom when it starts (at least one chunk, at most m). The fast
// PCIe phase moves the first `lead` bytes; the remainder is admitted as the
// persist drains (§3.2: "when all CPU memory chunks are occupied, upcoming
// checkpoints need to wait for free chunks"). Non-pipelined staging needs a
// full m-byte buffer before the copy can begin.
func (e *engine) startCheckpoint(iter int, pipelined bool) error {
	rec := &CheckpointRecord{Iteration: iter, Start: e.now}
	ck := &simCkpt{rec: rec, pipelined: pipelined}
	if pipelined {
		chunk := e.m / float64(e.cfg.Chunks)
		lead := e.dramM - e.dramHeld()
		if lead < chunk {
			lead = chunk
		}
		if lead > e.m {
			lead = e.m
		}
		ck.lead = lead
		copyJob, err := e.pcie.Submit(e.now, lead, 0)
		if err != nil {
			return err
		}
		ck.copyJob = copyJob
		job, err := e.persistResource().Submit(e.now, e.m, e.persistCap())
		if err != nil {
			return err
		}
		ck.persistJob = job
	} else {
		// Whole-checkpoint staging: wait until a full buffer fits in the
		// DRAM budget, then copy everything before persisting. CheckFreq,
		// Traditional and Gemini snapshot through pageable memory at a
		// fraction of the pinned-DMA rate (workload.CheckFreqCopyFraction).
		if err := e.waitDRAMFree(e.m); err != nil {
			return err
		}
		rec.Start = e.now
		ck.lead = e.m
		copyCap := 0.0
		switch e.cfg.Algo {
		case perfmodel.CheckFreq, perfmodel.Traditional, perfmodel.Gemini:
			copyCap = workload.CheckFreqCopyFraction * e.cfg.Platform.PCIeBW
		}
		copyJob, err := e.pcie.Submit(e.now, e.m, copyCap)
		if err != nil {
			return err
		}
		ck.copyJob = copyJob
	}
	e.active = append(e.active, ck)
	return nil
}

// waitDRAMFree stalls until `need` bytes of staging memory are available.
func (e *engine) waitDRAMFree(need float64) error {
	for e.dramM-e.dramHeld() < need-byteEps {
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// --- event loop -------------------------------------------------------------

// nextEvent returns the earliest upcoming resource completion or
// copy-admission threshold (a pipelined checkpoint whose staging completes
// when its persist has drained m−lead bytes).
func (e *engine) nextEvent() (float64, bool) {
	best := math.Inf(1)
	for _, r := range []*Resource{e.pcie, e.store, e.net} {
		if t, ok := r.NextEvent(); ok && t < best {
			best = t
		}
	}
	for _, ck := range e.active {
		if t, ok := e.copyAdmissionTime(ck); ok && t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// copyAdmissionTime predicts when a pipelined checkpoint's staging finishes:
// its PCIe phase is done and the persist has drained all but `lead` bytes.
func (e *engine) copyAdmissionTime(ck *simCkpt) (float64, bool) {
	if !ck.pipelined || ck.copyDone || ck.copyJob == nil || !ck.copyJob.Done() {
		return 0, false
	}
	if ck.persistJob == nil {
		return 0, false
	}
	need := (e.m - ck.lead) - ck.persistJob.Transferred()
	if need <= byteEps {
		return e.now, true
	}
	rate := ck.persistJob.Rate()
	if rate <= eps {
		return 0, false
	}
	return e.now + need/rate, true
}

// advanceTo moves virtual time to target, processing events on the way.
func (e *engine) advanceTo(target float64) error {
	for {
		next, ok := e.nextEvent()
		if !ok || next >= target-eps {
			e.advanceResources(target)
			e.processEvents()
			return nil
		}
		e.advanceResources(next)
		e.processEvents()
	}
}

// step advances to the next event; it errors if nothing can ever happen
// (deadlock guard).
func (e *engine) step() error {
	next, ok := e.nextEvent()
	if !ok {
		return fmt.Errorf("sim: deadlock at t=%v: waiting with no pending events", e.now)
	}
	e.steps++
	if e.steps > 1_000_000 {
		msg := fmt.Sprintf("sim: runaway event loop at t=%v next=%v (dt=%g)\n", e.now, next, next-e.now)
		for i, ck := range e.active {
			msg += fmt.Sprintf("ck%d iter=%d copyDone=%v done=%v lead=%g", i, ck.rec.Iteration, ck.copyDone, ck.done, ck.lead)
			if ck.copyJob != nil {
				msg += fmt.Sprintf(" copy[rem=%g rate=%g done=%v]", ck.copyJob.Remaining(), ck.copyJob.Rate(), ck.copyJob.Done())
			}
			if ck.persistJob != nil {
				msg += fmt.Sprintf(" persist[rem=%g rate=%g done=%v]", ck.persistJob.Remaining(), ck.persistJob.Rate(), ck.persistJob.Done())
			}
			if at, ok := e.copyAdmissionTime(ck); ok {
				msg += fmt.Sprintf(" admission=%v", at)
			}
			msg += "\n"
		}
		return fmt.Errorf("%s", msg)
	}
	e.advanceResources(next)
	e.processEvents()
	return nil
}

func (e *engine) advanceResources(to float64) {
	e.pcie.Advance(to)
	e.store.Advance(to)
	e.net.Advance(to)
	e.now = to
}

// processEvents reacts to completions: copy→persist transitions, checkpoint
// completion, DRAM cap refresh.
func (e *engine) processEvents() {
	remaining := e.active[:0]
	for _, ck := range e.active {
		if !ck.copyDone && (ck.copyJob == nil || ck.copyJob.Done()) {
			staged := true
			if ck.pipelined && ck.persistJob != nil && ck.lead < e.m {
				// Staging is complete only once the persist has drained all
				// but `lead` bytes (the pool can hold the rest).
				staged = ck.persistJob.Transferred() >= (e.m-ck.lead)-byteEps
			}
			if staged {
				ck.copyDone = true
				ck.rec.CopyEnd = e.now
				if ck.persistJob == nil {
					// Non-pipelined: persist starts now.
					job, err := e.persistResource().Submit(e.now, e.m, e.persistCap())
					if err == nil {
						ck.persistJob = job
					}
				}
			}
		}
		if !ck.done && ck.copyDone && ck.persistJob != nil && ck.persistJob.Done() {
			ck.done = true
			ck.rec.PersistEnd = e.now
			e.records = append(e.records, *ck.rec)
			continue
		}
		remaining = append(remaining, ck)
	}
	e.active = remaining
}

// waitCopiesDone stalls until no snapshot copy is in flight (the update
// gate).
func (e *engine) waitCopiesDone() error {
	before := e.now
	for {
		busy := false
		for _, ck := range e.active {
			if !ck.copyDone {
				busy = true
				break
			}
		}
		if !busy {
			e.stall += e.now - before
			return nil
		}
		if err := e.step(); err != nil {
			return err
		}
	}
}

// waitInflightBelow stalls until fewer than limit checkpoints are active.
func (e *engine) waitInflightBelow(limit int) error {
	for len(e.active) >= limit {
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// waitAll stalls until every checkpoint has fully persisted.
func (e *engine) waitAll() error {
	for len(e.active) > 0 {
		if err := e.step(); err != nil {
			return err
		}
	}
	return nil
}

// --- DRAM accounting ----------------------------------------------------------

// dramHeld returns the staging-memory occupancy: pipelined checkpoints hold
// at most their lead (staged-but-unpersisted bytes); non-pipelined ones hold
// a full buffer from copy start to persist end. GPM holds nothing (no DRAM
// staging).
func (e *engine) dramHeld() float64 {
	var held float64
	for _, ck := range e.active {
		if ck.copyJob == nil {
			continue // GPM: direct path
		}
		if !ck.pipelined {
			held += e.m
			continue
		}
		copied := ck.copyJob.Transferred()
		if ck.copyJob.Done() && ck.persistJob != nil {
			// Phase 2: admission keeps exactly `lead` bytes staged (or the
			// unpersisted remainder if smaller).
			copied = ck.persistJob.Transferred() + ck.lead
			if copied > e.m {
				copied = e.m
			}
		}
		var persisted float64
		if ck.persistJob != nil {
			persisted = ck.persistJob.Transferred()
		}
		if d := copied - persisted; d > 0 {
			held += d
		}
	}
	return held
}

// --- lag ---------------------------------------------------------------------

// meanLag computes E[completed(τ) − latestDurable(τ)] for τ uniform over the
// run: how much work a failure at a random instant destroys.
func (e *engine) meanLag() float64 {
	if len(e.iterEnd) == 0 {
		return 0
	}
	type persistEvent struct {
		t    float64
		iter int
	}
	events := make([]persistEvent, 0, len(e.records))
	for _, r := range e.records {
		events = append(events, persistEvent{r.PersistEnd, r.Iteration})
	}
	sort.Slice(events, func(i, j int) bool { return events[i].t < events[j].t })

	// Walk iteration completions; for each, find the newest durable
	// iteration at that instant. latestDurable is monotone because
	// counters published out of order still only advance the maximum.
	latest := 0
	idx := 0
	maxIter := 0
	var weighted float64
	var prevT float64
	for i, tEnd := range e.iterEnd {
		for idx < len(events) && events[idx].t <= tEnd {
			if events[idx].iter > maxIter {
				maxIter = events[idx].iter
			}
			idx++
		}
		latest = maxIter
		lag := float64(i + 1 - latest)
		if lag < 0 {
			lag = 0
		}
		weighted += lag * (tEnd - prevT)
		prevT = tEnd
	}
	if prevT == 0 {
		return 0
	}
	return weighted / prevT
}
