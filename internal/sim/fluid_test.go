package sim

import (
	"math"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleJobDrainsAtCapacity(t *testing.T) {
	r := NewResource("disk", 100) // 100 B/s
	j, err := r.Submit(0, 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	next, ok := r.NextEvent()
	if !ok || !almostEqual(next, 10, 1e-6) {
		t.Fatalf("completion at %v, want 10", next)
	}
	r.Advance(next)
	if !j.Done() {
		t.Fatal("job not done after its completion time")
	}
	if r.Active() != 0 {
		t.Fatalf("active = %d", r.Active())
	}
}

func TestTwoJobsShareFairly(t *testing.T) {
	r := NewResource("disk", 100)
	a, _ := r.Submit(0, 500, 0)
	b, _ := r.Submit(0, 1000, 0)
	if !almostEqual(a.Rate(), 50, 1e-6) || !almostEqual(b.Rate(), 50, 1e-6) {
		t.Fatalf("rates %v/%v, want 50/50", a.Rate(), b.Rate())
	}
	// a finishes at t=10; b then speeds up and finishes at 10 + 500/100 = 15.
	next, _ := r.NextEvent()
	if !almostEqual(next, 10, 1e-6) {
		t.Fatalf("first completion %v", next)
	}
	r.Advance(next)
	if !a.Done() || b.Done() {
		t.Fatal("wrong job finished first")
	}
	if !almostEqual(b.Rate(), 100, 1e-6) {
		t.Fatalf("b rate after a done = %v", b.Rate())
	}
	next, _ = r.NextEvent()
	if !almostEqual(next, 15, 1e-6) {
		t.Fatalf("second completion %v", next)
	}
}

func TestPerJobCapBinds(t *testing.T) {
	r := NewResource("disk", 100)
	a, _ := r.Submit(0, 1000, 30) // capped below fair share
	b, _ := r.Submit(0, 1000, 0)
	if !almostEqual(a.Rate(), 30, 1e-6) {
		t.Fatalf("capped job rate %v", a.Rate())
	}
	// b gets the leftover 70, not just 50.
	if !almostEqual(b.Rate(), 70, 1e-6) {
		t.Fatalf("uncapped job rate %v, want 70", b.Rate())
	}
}

func TestCapAboveShareIsInert(t *testing.T) {
	r := NewResource("disk", 100)
	a, _ := r.Submit(0, 1000, 90)
	b, _ := r.Submit(0, 1000, 90)
	if !almostEqual(a.Rate(), 50, 1e-6) || !almostEqual(b.Rate(), 50, 1e-6) {
		t.Fatalf("rates %v/%v, want 50/50", a.Rate(), b.Rate())
	}
}

func TestWaterFillingThreeTiers(t *testing.T) {
	r := NewResource("disk", 100)
	a, _ := r.Submit(0, 1e6, 10)
	b, _ := r.Submit(0, 1e6, 30)
	c, _ := r.Submit(0, 1e6, 0)
	// a=10, b=30, c gets 60.
	if !almostEqual(a.Rate(), 10, 1e-6) || !almostEqual(b.Rate(), 30, 1e-6) || !almostEqual(c.Rate(), 60, 1e-6) {
		t.Fatalf("rates %v/%v/%v", a.Rate(), b.Rate(), c.Rate())
	}
}

func TestSetCapRebalances(t *testing.T) {
	r := NewResource("disk", 100)
	a, _ := r.Submit(0, 1000, 0)
	b, _ := r.Submit(0, 1000, 0)
	a.SetCap(r, 20)
	if !almostEqual(a.Rate(), 20, 1e-6) || !almostEqual(b.Rate(), 80, 1e-6) {
		t.Fatalf("rates after SetCap: %v/%v", a.Rate(), b.Rate())
	}
	// Stall a entirely: cap ≈ 0 — NextEvent must ignore it.
	a.SetCap(r, 1e-12)
	next, ok := r.NextEvent()
	if !ok {
		t.Fatal("no event with b still running")
	}
	r.Advance(next)
	if !b.Done() || a.Done() {
		t.Fatal("stalled job completed or running job did not")
	}
}

func TestAdvancePartial(t *testing.T) {
	r := NewResource("disk", 100)
	j, _ := r.Submit(0, 1000, 0)
	r.Advance(4)
	if !almostEqual(j.Remaining(), 600, 1e-6) {
		t.Fatalf("remaining %v after partial advance", j.Remaining())
	}
	if !almostEqual(j.Transferred(), 400, 1e-6) {
		t.Fatalf("transferred %v", j.Transferred())
	}
}

func TestInfiniteCapacity(t *testing.T) {
	r := NewResource("pcie", 0)
	j, _ := r.Submit(0, 1000, 50)
	if !almostEqual(j.Rate(), 50, 1e-6) {
		t.Fatalf("capped job on infinite resource: %v", j.Rate())
	}
	next, ok := r.NextEvent()
	if !ok || !almostEqual(next, 20, 1e-6) {
		t.Fatalf("completion %v", next)
	}
}

func TestNegativeJobRejected(t *testing.T) {
	r := NewResource("disk", 100)
	if _, err := r.Submit(0, -5, 0); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestBackwardsAdvancePanics(t *testing.T) {
	r := NewResource("disk", 100)
	r.Advance(10)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards Advance did not panic")
		}
	}()
	r.Advance(5)
}

func TestZeroByteJobCompletesImmediately(t *testing.T) {
	r := NewResource("disk", 100)
	j, _ := r.Submit(0, 0, 0)
	if !j.Done() {
		// zero-byte jobs should be done at the first advance at latest
		r.Advance(0)
	}
	r.Advance(0)
	if !j.Done() {
		t.Fatal("zero-byte job never completed")
	}
}

// Aggregate conservation: total bytes drained can never exceed capacity×time.
func TestConservation(t *testing.T) {
	r := NewResource("disk", 100)
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, _ := r.Submit(0, 300, 40)
		jobs = append(jobs, j)
	}
	r.Advance(2) // at most 200 bytes total can have moved
	var moved float64
	for _, j := range jobs {
		moved += j.Transferred()
	}
	if moved > 200+1e-6 {
		t.Fatalf("moved %v bytes in 2s at 100 B/s", moved)
	}
	// And caps must also hold: 5×40 = 200 demand > 100 capacity ⇒ fair 20 each.
	for i, j := range jobs {
		if !almostEqual(j.Transferred(), 40, 1e-6) {
			t.Fatalf("job %d moved %v, want 40", i, j.Transferred())
		}
	}
}
