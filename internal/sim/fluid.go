// Package sim is a discrete-event, fluid-flow simulator of the checkpoint
// data path, used to reproduce the paper's evaluation at paper scale
// (checkpoints of 1.1–108 GB against A100/PMEM-class hardware) in virtual
// time. The real engine (internal/core) validates the algorithm; the
// simulator reproduces every published figure.
//
// The fluid model: each shared resource (PCIe link, storage device, NIC) is
// a capacity in bytes/sec divided among its active jobs by max-min fair
// sharing, with optional per-job rate caps (a checkpoint with p writer
// threads cannot exceed p×perThreadBW on the storage device, §3.3/§5.4.2).
// Between events, every job drains linearly; events are job completions and
// the policy's own milestones (iteration boundaries, buffer-full
// transitions).
package sim

import (
	"fmt"
	"math"
)

const (
	// eps is the time-comparison tolerance in seconds.
	eps = 1e-9
	// byteEps is the completion tolerance in bytes. Jobs carry payloads of
	// up to ~1e11 bytes at ~1e9 B/s rates, so float64 arithmetic leaves
	// residues of milli-bytes whose completion times can fall below the
	// representable resolution of the clock; anything under one byte is
	// done (payloads are 10⁹–10¹¹ bytes, so a byte is beyond negligible).
	byteEps = 1.0
)

// Job is one in-flight transfer on a Resource.
type Job struct {
	remaining float64 // bytes left
	cap       float64 // per-job rate cap in bytes/s (0 = uncapped)
	rate      float64 // currently assigned rate
	total     float64 // original size
}

// Remaining returns the bytes the job still has to move.
func (j *Job) Remaining() float64 { return j.remaining }

// Transferred returns the bytes moved so far.
func (j *Job) Transferred() float64 { return j.total - j.remaining }

// Done reports completion.
func (j *Job) Done() bool { return j.remaining <= byteEps }

// SetCap changes the job's rate cap. The owning Resource must be Advanced
// to the current time first; rates are recomputed immediately.
func (j *Job) SetCap(r *Resource, cap float64) {
	j.cap = cap
	r.recompute()
}

// Rate returns the job's current fluid rate.
func (j *Job) Rate() float64 { return j.rate }

// Resource is a max-min fair-shared capacity.
type Resource struct {
	name     string
	capacity float64
	jobs     []*Job
	last     float64 // virtual time of the last Advance
}

// NewResource returns a resource with the given aggregate bandwidth.
// A non-positive capacity means infinite (no contention).
func NewResource(name string, capacity float64) *Resource {
	return &Resource{name: name, capacity: capacity}
}

// Submit adds a job of the given size. now must equal the resource's
// current time (call Advance first). cap limits the job's own rate
// (0 = uncapped).
func (r *Resource) Submit(now, bytes, cap float64) (*Job, error) {
	if math.Abs(now-r.last) > eps && len(r.jobs) > 0 {
		return nil, fmt.Errorf("sim: %s submitted at %v but resource is at %v", r.name, now, r.last)
	}
	r.last = now
	if bytes < 0 {
		return nil, fmt.Errorf("sim: negative job size %v", bytes)
	}
	j := &Job{remaining: bytes, total: bytes, cap: cap}
	r.jobs = append(r.jobs, j)
	r.recompute()
	return j, nil
}

// Advance drains all jobs to virtual time now. It never overshoots a
// completion: callers must not advance past NextEvent.
func (r *Resource) Advance(now float64) {
	dt := now - r.last
	if dt < -eps {
		panic(fmt.Sprintf("sim: %s advanced backwards: %v -> %v", r.name, r.last, now))
	}
	if dt < 0 {
		dt = 0
	}
	// Even a zero-length advance sweeps finished jobs: a completion whose
	// time difference from now is below float resolution must still retire,
	// or the event loop would spin in place.
	active := r.jobs[:0]
	changed := false
	for _, j := range r.jobs {
		j.remaining -= j.rate * dt
		if j.remaining <= byteEps {
			j.remaining = 0
			j.rate = 0
			changed = true
			continue
		}
		active = append(active, j)
	}
	r.jobs = active
	r.last = now
	if dt > 0 || changed {
		r.recompute()
	}
}

// NextEvent returns the virtual time of the earliest job completion at
// current rates, or ok=false when nothing is in flight (or all stalled).
func (r *Resource) NextEvent() (float64, bool) {
	best := math.Inf(1)
	for _, j := range r.jobs {
		if j.rate <= eps {
			continue
		}
		if t := r.last + j.remaining/j.rate; t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// Active returns the number of unfinished jobs.
func (r *Resource) Active() int { return len(r.jobs) }

// Now returns the resource's current virtual time.
func (r *Resource) Now() float64 { return r.last }

// recompute assigns max-min fair rates respecting per-job caps
// (water-filling).
func (r *Resource) recompute() {
	n := len(r.jobs)
	if n == 0 {
		return
	}
	if r.capacity <= 0 {
		// Infinite capacity: every job runs at its cap (or "very fast").
		for _, j := range r.jobs {
			if j.cap > 0 {
				j.rate = j.cap
			} else {
				j.rate = math.MaxFloat64 / 4
			}
		}
		return
	}
	remainingCap := r.capacity
	unassigned := append([]*Job(nil), r.jobs...)
	for len(unassigned) > 0 {
		share := remainingCap / float64(len(unassigned))
		progressed := false
		next := unassigned[:0]
		for _, j := range unassigned {
			if j.cap > 0 && j.cap <= share+eps {
				j.rate = j.cap
				remainingCap -= j.cap
				progressed = true
				continue
			}
			next = append(next, j)
		}
		unassigned = next
		if !progressed {
			// No caps bind: split the remainder evenly.
			for _, j := range unassigned {
				j.rate = share
			}
			return
		}
		if remainingCap < 0 {
			remainingCap = 0
		}
	}
}
