package sim

import (
	"testing"

	"pccheck/internal/perfmodel"
	"pccheck/internal/workload"
)

// White-box tests of the simulation engine's internals: DRAM accounting,
// copy-admission thresholds, stall attribution and checkpoint records.

func engineFor(t *testing.T, cfg Config) *engine {
	t.Helper()
	cfg = cfg.withDefaults()
	tSec := cfg.Model.IterTimeOn(cfg.Platform).Seconds()
	if tSec <= 0 {
		t.Fatalf("model %s not runnable", cfg.Model.Name)
	}
	return &engine{
		cfg:   cfg,
		t:     tSec,
		m:     float64(cfg.Model.PartitionBytes()),
		pcie:  NewResource("pcie", cfg.Platform.PCIeBW),
		store: NewResource("store", cfg.Platform.StorageWriteBW),
		net:   NewResource("net", cfg.Platform.NetBW),
		dramM: float64(cfg.DRAMBytes),
	}
}

func TestEngineDRAMHeldAccounting(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	e := engineFor(t, Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 10, Concurrent: 2, Chunks: 4,
	})
	if e.dramHeld() != 0 {
		t.Fatalf("fresh engine holds %v", e.dramHeld())
	}
	if err := e.startCheckpoint(10, true); err != nil {
		t.Fatal(err)
	}
	// Nothing copied yet ⇒ nothing held.
	if h := e.dramHeld(); h != 0 {
		t.Fatalf("held before any copy: %v", h)
	}
	// Advance 0.5 s: PCIe moves 6 GB, storage drains ~0.33 GB.
	if err := e.advanceTo(0.5); err != nil {
		t.Fatal(err)
	}
	held := e.dramHeld()
	if held <= 0 {
		t.Fatalf("held after copies: %v", held)
	}
	copied := e.active[0].copyJob.Transferred()
	persisted := e.active[0].persistJob.Transferred()
	if want := copied - persisted; held != want {
		t.Fatalf("held %v != copied−persisted %v", held, want)
	}
}

func TestEngineCopyAdmissionGating(t *testing.T) {
	// Pipelined checkpoint with lead < m: after the fast PCIe phase the
	// staging completion must wait for the persist to drain m − lead.
	model := mustModel(t, "OPT-1.3B")
	m := model.CheckpointBytes
	e := engineFor(t, Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 10, Concurrent: 2, Chunks: 8,
		DRAMBytes: m / 2, // tight budget ⇒ lead ≈ m/2
	})
	if err := e.startCheckpoint(10, true); err != nil {
		t.Fatal(err)
	}
	ck := e.active[0]
	if ck.lead >= float64(m) {
		t.Fatalf("lead %v should be below m %v under a tight budget", ck.lead, m)
	}
	// Run until the PCIe phase finishes; staging must still be incomplete.
	for !ck.copyJob.Done() {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if ck.copyDone {
		t.Fatal("staging completed at PCIe speed despite DRAM gate")
	}
	at, ok := e.copyAdmissionTime(ck)
	if !ok {
		t.Fatal("no admission event scheduled")
	}
	if at <= e.now {
		t.Fatalf("admission at %v not in the future of %v", at, e.now)
	}
	// Eventually the persist drains enough and staging completes.
	for !ck.copyDone {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	need := e.m - ck.lead
	if got := ck.persistJob.Transferred(); got < need-2 {
		t.Fatalf("staging completed with only %v persisted, need %v", got, need)
	}
}

func TestEngineNonPipelinedHoldsFullBuffer(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	e := engineFor(t, Config{
		Algo: perfmodel.CheckFreq, Model: model, Platform: workload.A100GCP,
		Interval: 10,
	})
	if err := e.startCheckpoint(10, false); err != nil {
		t.Fatal(err)
	}
	if err := e.advanceTo(0.1); err != nil {
		t.Fatal(err)
	}
	if held := e.dramHeld(); held != e.m {
		t.Fatalf("non-pipelined held %v, want full m %v", held, e.m)
	}
}

func TestEngineRecordsCompleteCheckpoints(t *testing.T) {
	model := mustModel(t, "VGG16")
	res, err := Run(Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 50, Concurrent: 2, Iterations: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checkpoints) != 10 {
		t.Fatalf("records = %d, want 10", len(res.Checkpoints))
	}
	for i, r := range res.Checkpoints {
		if r.Iteration%50 != 0 {
			t.Fatalf("record %d at iteration %d", i, r.Iteration)
		}
		if !(r.Start <= r.CopyEnd && r.CopyEnd <= r.PersistEnd) {
			t.Fatalf("record %d ordering: start %v copy %v persist %v", i, r.Start, r.CopyEnd, r.PersistEnd)
		}
	}
}

func TestEngineStallAttribution(t *testing.T) {
	model := mustModel(t, "OPT-1.3B")
	// Frequent checkpointing on the slow device: most of the runtime is
	// attributed stall.
	busy, err := Run(Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 2, Concurrent: 2, Iterations: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	overhead := busy.Runtime - busy.BaseRuntime
	if busy.StallSeconds < 0.8*overhead || busy.StallSeconds > overhead*1.001 {
		t.Fatalf("stall %v vs overhead %v: attribution broken", busy.StallSeconds, overhead)
	}
	// Infrequent checkpointing: negligible stall.
	idle, err := Run(Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
		Interval: 200, Concurrent: 2, Iterations: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if idle.StallSeconds > 0.02*idle.Runtime {
		t.Fatalf("hidden checkpointing stalled %v of %v", idle.StallSeconds, idle.Runtime)
	}
}

func TestEngineGeminiUsesNetwork(t *testing.T) {
	model := mustModel(t, "BLOOM-7B")
	res, err := Run(Config{
		Algo: perfmodel.Gemini, Model: model, Platform: workload.A100GCP,
		Interval: 50, Iterations: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per-checkpoint latency ≈ partition / NetBW = 18 GB / 1.875 GB/s ≈ 9.6 s
	// plus the pageable snapshot copy (18 GB / 3 GB/s = 6 s).
	want := 18e9/workload.A100GCP.NetBW + 18e9/(workload.CheckFreqCopyFraction*workload.A100GCP.PCIeBW)
	if res.AvgPersist < 0.9*want || res.AvgPersist > 1.3*want {
		t.Fatalf("Gemini persist %v, want ≈%v", res.AvgPersist, want)
	}
}

func TestEngineTraditionalFullySynchronous(t *testing.T) {
	model := mustModel(t, "BERT")
	res, err := Run(Config{
		Algo: perfmodel.Traditional, Model: model, Platform: workload.A100GCP,
		Interval: 20, Iterations: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Synchronous: overhead per checkpoint = copy + persist, all stall.
	perCkpt := 4e9/(workload.CheckFreqCopyFraction*workload.A100GCP.PCIeBW) +
		4e9/(workload.CheckFreqStreamFraction*workload.A100GCP.StorageWriteBW)
	wantOverhead := 10 * perCkpt
	overhead := res.Runtime - res.BaseRuntime
	if overhead < 0.9*wantOverhead || overhead > 1.15*wantOverhead {
		t.Fatalf("Traditional overhead %v, want ≈%v", overhead, wantOverhead)
	}
}
