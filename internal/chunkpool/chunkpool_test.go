package chunkpool

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Fatal("zero chunks accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	p, err := New(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 3 || p.ChunkSize() != 128 || p.Free() != 3 {
		t.Fatalf("pool geometry: total=%d size=%d free=%d", p.Total(), p.ChunkSize(), p.Free())
	}
}

func TestForBudget(t *testing.T) {
	p, err := ForBudget(1000, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p.Total() != 3 {
		t.Fatalf("1000/300 budget should give 3 chunks, got %d", p.Total())
	}
	// Budget smaller than one chunk still yields one chunk.
	p2, err := ForBudget(10, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Total() != 1 {
		t.Fatalf("tiny budget should give 1 chunk, got %d", p2.Total())
	}
	if _, err := ForBudget(100, 0); err == nil {
		t.Fatal("zero chunk size accepted")
	}
}

func TestAcquireRelease(t *testing.T) {
	p, _ := New(2, 64)
	c1, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if c1.ID() == c2.ID() {
		t.Fatal("same chunk handed out twice")
	}
	if p.Free() != 0 {
		t.Fatalf("Free = %d, want 0", p.Free())
	}
	if c := p.TryAcquire(); c != nil {
		t.Fatal("TryAcquire on empty pool returned a chunk")
	}
	p.Release(c1)
	if got := p.TryAcquire(); got == nil {
		t.Fatal("TryAcquire after release returned nil")
	} else {
		p.Release(got)
	}
	p.Release(c2)
	if p.Free() != 2 {
		t.Fatalf("Free = %d, want 2", p.Free())
	}
}

func TestAcquireBlocksUntilRelease(t *testing.T) {
	p, _ := New(1, 64)
	c, _ := p.Acquire(context.Background())
	done := make(chan *Chunk)
	go func() {
		got, err := p.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	select {
	case <-done:
		t.Fatal("Acquire returned while pool was empty")
	case <-time.After(50 * time.Millisecond):
	}
	p.Release(c)
	select {
	case got := <-done:
		p.Release(got)
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
	waits, waited := p.Stats()
	if waits != 1 {
		t.Fatalf("waits = %d, want 1", waits)
	}
	if waited <= 0 {
		t.Fatalf("waited = %v, want > 0", waited)
	}
}

func TestAcquireHonoursContext(t *testing.T) {
	p, _ := New(1, 64)
	c, _ := p.Acquire(context.Background())
	defer p.Release(c)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := p.Acquire(ctx); err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	p, _ := New(1, 64)
	c, _ := p.Acquire(context.Background())
	p.Release(c)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	p.Release(c)
}

func TestForeignReleasePanics(t *testing.T) {
	p, _ := New(1, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("foreign release did not panic")
		}
	}()
	p.Release(&Chunk{buf: make([]byte, 32)})
}

func TestConcurrentCycling(t *testing.T) {
	p, _ := New(4, 256)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c, err := p.Acquire(context.Background())
				if err != nil {
					t.Error(err)
					return
				}
				c.Bytes()[0] = byte(i) // we own it exclusively
				p.Release(c)
			}
		}(i)
	}
	wg.Wait()
	if p.Free() != 4 {
		t.Fatalf("chunks leaked: free = %d", p.Free())
	}
}
