// Package chunkpool manages the bounded pool of pinned DRAM staging buffers
// that checkpoints flow through on their way from device memory to
// persistent storage.
//
// In the paper (§3.1–§3.2), the user dedicates M bytes of DRAM to
// checkpointing, split into c chunks of b bytes. A GPU→DRAM copy needs a
// free chunk; a chunk becomes free again once its contents are persisted.
// When every chunk is occupied, the next checkpoint *waits* — this blocking
// is precisely the throughput/memory trade-off Figure 14 measures, so the
// pool records how often and how long acquirers waited.
package chunkpool

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// Chunk is one staging buffer. Chunks are owned by whoever holds them
// between Acquire and Release; the pool never touches contents.
type Chunk struct {
	buf []byte
	id  int
}

// Bytes returns the chunk's full backing buffer.
func (c *Chunk) Bytes() []byte { return c.buf }

// Cap returns the chunk capacity in bytes.
func (c *Chunk) Cap() int { return len(c.buf) }

// ID returns the chunk's index within its pool, for logging and tests.
func (c *Chunk) ID() int { return c.id }

// Pool is a fixed set of equal-size chunks with blocking acquisition.
type Pool struct {
	free      chan *Chunk
	chunkSize int
	total     int

	waits    atomic.Int64 // acquisitions that had to block
	waitNano atomic.Int64 // total time spent blocked
}

// New builds a pool of chunks × size bytes.
func New(chunks, size int) (*Pool, error) {
	if chunks <= 0 {
		return nil, fmt.Errorf("chunkpool: need at least one chunk, got %d", chunks)
	}
	if size <= 0 {
		return nil, fmt.Errorf("chunkpool: chunk size must be positive, got %d", size)
	}
	p := &Pool{
		free:      make(chan *Chunk, chunks),
		chunkSize: size,
		total:     chunks,
	}
	for i := 0; i < chunks; i++ {
		p.free <- &Chunk{buf: make([]byte, size), id: i}
	}
	return p, nil
}

// ForBudget builds a pool covering a DRAM budget of m bytes with chunks of
// size b, i.e. c = m/b chunks (at least one).
func ForBudget(budgetBytes, chunkBytes int64) (*Pool, error) {
	if chunkBytes <= 0 {
		return nil, fmt.Errorf("chunkpool: chunk size must be positive, got %d", chunkBytes)
	}
	c := int(budgetBytes / chunkBytes)
	if c < 1 {
		c = 1
	}
	return New(c, int(chunkBytes))
}

// Acquire blocks until a chunk is free or ctx is done.
func (p *Pool) Acquire(ctx context.Context) (*Chunk, error) {
	select {
	case c := <-p.free:
		return c, nil
	default:
	}
	// Slow path: record the wait.
	p.waits.Add(1)
	start := time.Now()
	select {
	case c := <-p.free:
		p.waitNano.Add(int64(time.Since(start)))
		return c, nil
	case <-ctx.Done():
		p.waitNano.Add(int64(time.Since(start)))
		return nil, ctx.Err()
	}
}

// TryAcquire returns a free chunk or nil without blocking.
func (p *Pool) TryAcquire() *Chunk {
	select {
	case c := <-p.free:
		return c
	default:
		return nil
	}
}

// Release returns a chunk to the pool. Releasing a chunk twice or releasing
// a foreign chunk is a programming error and panics, since it would
// silently corrupt in-flight checkpoints.
func (p *Pool) Release(c *Chunk) {
	if c == nil || len(c.buf) != p.chunkSize {
		panic("chunkpool: releasing foreign chunk")
	}
	select {
	case p.free <- c:
	default:
		panic("chunkpool: double release")
	}
}

// ChunkSize returns the size of each chunk in bytes.
func (p *Pool) ChunkSize() int { return p.chunkSize }

// Total returns the number of chunks in the pool.
func (p *Pool) Total() int { return p.total }

// Free returns the number of currently available chunks.
func (p *Pool) Free() int { return len(p.free) }

// Stats reports how often acquirers blocked and for how long in total —
// the observable cost of a tight DRAM budget (Figure 14).
func (p *Pool) Stats() (waits int64, waited time.Duration) {
	return p.waits.Load(), time.Duration(p.waitNano.Load())
}
