// Package figures regenerates every table and figure of the paper's
// evaluation (§5) from the simulator, the analytic model and the trace
// replay, emitting the same rows/series the paper plots. Absolute numbers
// come from the calibrated substitutes documented in DESIGN.md; the shapes —
// who wins, by what factor, where the crossovers fall — are the
// reproduction targets recorded in EXPERIMENTS.md.
package figures

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"

	"pccheck/internal/perfmodel"
	"pccheck/internal/sim"
	"pccheck/internal/trace"
	"pccheck/internal/workload"
)

// Figure is a tabular result: one row per measured point.
type Figure struct {
	// ID names the paper artefact, e.g. "figure8a" or "table1".
	ID string
	// Title describes what the paper's version shows.
	Title string
	// Columns are the CSV header.
	Columns []string
	// Rows hold the data, stringified.
	Rows [][]string
}

// WriteCSV emits the figure as CSV with a header row.
func (f Figure) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Columns); err != nil {
		return err
	}
	for _, r := range f.Rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f64(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// Intervals is the checkpoint-frequency axis the paper sweeps.
var Intervals = []int{1, 10, 25, 50, 100}

// defaultPCcheck returns the PCcheck configuration the profiling tool picks
// on the A100 platform: a modest number of concurrent checkpoints (2–4) and
// 3 writers (§5.2.3).
func defaultPCcheck(model workload.Model, platform workload.Platform, f int) sim.Config {
	return sim.Config{
		Algo: perfmodel.PCcheck, Model: model, Platform: platform,
		Interval: f, Concurrent: 2, Writers: 3, Chunks: 4,
	}
}

func baselineCfg(algo perfmodel.Algorithm, model workload.Model, platform workload.Platform, f int) sim.Config {
	return sim.Config{Algo: algo, Model: model, Platform: platform, Interval: f}
}

// algosFor returns the mechanisms compared for a model (Gemini only in
// distributed setups, §5.1).
func algosFor(model workload.Model) []perfmodel.Algorithm {
	algos := []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.GPM, perfmodel.PCcheck}
	if model.Nodes > 1 {
		algos = append(algos, perfmodel.Gemini)
	}
	return algos
}

func runAlgo(algo perfmodel.Algorithm, model workload.Model, platform workload.Platform, f int) (sim.Result, error) {
	var cfg sim.Config
	if algo == perfmodel.PCcheck {
		cfg = defaultPCcheck(model, platform, f)
	} else {
		cfg = baselineCfg(algo, model, platform, f)
	}
	return sim.Run(cfg)
}

// Figure1 reproduces Figure 1: CheckFreq's and Gemini's BLOOM-7B slowdown
// versus checkpoint interval, with the recovery time on a secondary axis.
func Figure1() (Figure, error) {
	model, err := workload.ByName("BLOOM-7B")
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:      "figure1",
		Title:   "BLOOM-7B training slowdown of CheckFreq and Gemini vs checkpoint interval, with recovery time",
		Columns: []string{"interval", "checkfreq_slowdown", "gemini_slowdown", "recovery_seconds"},
	}
	for _, f := range Intervals {
		cf, err := runAlgo(perfmodel.CheckFreq, model, workload.A100GCP, f)
		if err != nil {
			return Figure{}, err
		}
		gem, err := runAlgo(perfmodel.Gemini, model, workload.A100GCP, f)
		if err != nil {
			return Figure{}, err
		}
		rec := recoverySeconds(perfmodel.CheckFreq, model, workload.A100GCP, cf)
		fig.Rows = append(fig.Rows, []string{
			strconv.Itoa(f), f64(cf.Slowdown), f64(gem.Slowdown), f64(rec),
		})
	}
	return fig, nil
}

// recoverySeconds derives a mechanism's mean recovery time from a simulated
// run: checkpoint load + re-execution of the mean lost work (§4.2, §5.2.3).
func recoverySeconds(algo perfmodel.Algorithm, model workload.Model, platform workload.Platform, res sim.Result) float64 {
	m := float64(model.PartitionBytes())
	var load float64
	if algo == perfmodel.Gemini {
		load = m / platform.NetBW // restore from the peer's DRAM
	} else {
		load = m / platform.StorageReadBW
	}
	redo := res.MeanLagIters / res.Throughput // lost iterations × eff iter time
	return load + redo
}

// attachSeconds is the per-failure disk reattach cost (zero for Gemini,
// which keeps no disk state, §5.2.3).
func attachSeconds(algo perfmodel.Algorithm, platform workload.Platform) float64 {
	if algo == perfmodel.Gemini {
		return 0
	}
	return platform.DiskAttach.Seconds()
}

// GoodputOf replays the preemption trace for one simulated configuration:
// effective iteration time from the run, mean recovery per §4.2, disk
// reattach where applicable.
func GoodputOf(algo perfmodel.Algorithm, model workload.Model, platform workload.Platform, res sim.Result, tr trace.Trace) (float64, error) {
	rec := recoverySeconds(algo, model, platform, res)
	rep, err := trace.Replay(tr, trace.ReplayInput{
		EffIterTime:  time.Duration(float64(time.Second) / res.Throughput),
		MeanRecovery: time.Duration(rec * float64(time.Second)),
		DiskAttach:   time.Duration(attachSeconds(algo, platform) * float64(time.Second)),
	})
	if err != nil {
		return 0, err
	}
	return rep.Goodput, nil
}

// idealGoodput replays the trace for a zero-overhead checkpointer at
// interval f: full training throughput, mean rollback of f/2 iterations.
func idealGoodput(model workload.Model, platform workload.Platform, f int, tr trace.Trace) (float64, error) {
	t := model.IterTimeOn(platform).Seconds()
	load := float64(model.PartitionBytes()) / platform.StorageReadBW
	rep, err := trace.Replay(tr, trace.ReplayInput{
		EffIterTime:  time.Duration(t * float64(time.Second)),
		MeanRecovery: time.Duration((load + float64(f)/2*t) * float64(time.Second)),
		DiskAttach:   platform.DiskAttach,
	})
	if err != nil {
		return 0, err
	}
	return rep.Goodput, nil
}

// DefaultTrace is the synthetic stand-in for the André et al. spot trace
// (see internal/trace).
func DefaultTrace() trace.Trace {
	return trace.Synthetic(trace.SyntheticConfig{Seed: 1})
}

// Figure2 reproduces Figure 2: BLOOM-7B goodput versus checkpoint interval
// on the spot-VM preemption trace, for CheckFreq, Gemini, PCcheck and the
// ideal zero-overhead system.
func Figure2() (Figure, error) {
	model, err := workload.ByName("BLOOM-7B")
	if err != nil {
		return Figure{}, err
	}
	tr := DefaultTrace()
	fig := Figure{
		ID:      "figure2",
		Title:   "BLOOM-7B goodput vs checkpoint interval on a spot GPU preemption trace",
		Columns: []string{"interval", "checkfreq", "gemini", "pccheck", "ideal"},
	}
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, algo := range []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.Gemini, perfmodel.PCcheck} {
			res, err := runAlgo(algo, model, workload.A100GCP, f)
			if err != nil {
				return Figure{}, err
			}
			g, err := GoodputOf(algo, model, workload.A100GCP, res, tr)
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(g))
		}
		ideal, err := idealGoodput(model, workload.A100GCP, f, tr)
		if err != nil {
			return Figure{}, err
		}
		row = append(row, f64(ideal))
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure8Models lists the panels of Figure 8 in order (a–f).
var Figure8Models = []string{"VGG16", "BERT", "TransformerXL", "OPT-1.3B", "OPT-2.7B", "BLOOM-7B"}

// Figure8 reproduces one panel of Figure 8: training throughput (iters/s)
// versus checkpoint interval on SSD, per mechanism, plus the no-checkpoint
// line.
func Figure8(modelName string) (Figure, error) {
	model, err := workload.ByName(modelName)
	if err != nil {
		return Figure{}, err
	}
	algos := algosFor(model)
	fig := Figure{
		ID:      "figure8-" + modelName,
		Title:   fmt.Sprintf("%s training throughput vs checkpoint interval (SSD, A100)", modelName),
		Columns: []string{"interval"},
	}
	for _, a := range algos {
		fig.Columns = append(fig.Columns, a.String()+"_iters_per_sec")
	}
	fig.Columns = append(fig.Columns, "no_checkpoint_iters_per_sec")
	base := 1.0 / model.IterTimeOn(workload.A100GCP).Seconds()
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, a := range algos {
			res, err := runAlgo(a, model, workload.A100GCP, f)
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.Throughput))
		}
		row = append(row, f64(base))
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure9 reproduces one panel of Figure 9: goodput versus checkpoint
// interval on the preemption trace, per mechanism, plus the ideal.
func Figure9(modelName string) (Figure, error) {
	model, err := workload.ByName(modelName)
	if err != nil {
		return Figure{}, err
	}
	tr := DefaultTrace()
	algos := algosFor(model)
	fig := Figure{
		ID:      "figure9-" + modelName,
		Title:   fmt.Sprintf("%s goodput vs checkpoint interval on the spot preemption trace", modelName),
		Columns: []string{"interval"},
	}
	for _, a := range algos {
		fig.Columns = append(fig.Columns, a.String()+"_goodput")
	}
	fig.Columns = append(fig.Columns, "ideal_goodput")
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, a := range algos {
			res, err := runAlgo(a, model, workload.A100GCP, f)
			if err != nil {
				return Figure{}, err
			}
			g, err := GoodputOf(a, model, workload.A100GCP, res, tr)
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(g))
		}
		ideal, err := idealGoodput(model, workload.A100GCP, f, tr)
		if err != nil {
			return Figure{}, err
		}
		row = append(row, f64(ideal))
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure10 reproduces Figure 10: BERT checkpointing overhead on the Intel
// Optane PMEM machine.
func Figure10() (Figure, error) {
	model, err := workload.ByName("BERT")
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:      "figure10",
		Title:   "BERT training throughput vs checkpoint interval on PMEM (Titan RTX)",
		Columns: []string{"interval", "checkfreq_iters_per_sec", "gpm_iters_per_sec", "pccheck_iters_per_sec", "no_checkpoint_iters_per_sec"},
	}
	base := 1.0 / model.IterTimeOn(workload.RTXPMEM).Seconds()
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, a := range []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.GPM, perfmodel.PCcheck} {
			res, err := runAlgo(a, model, workload.RTXPMEM, f)
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.Throughput))
		}
		row = append(row, f64(base))
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure11Sizes is the checkpoint-size axis of the persist microbenchmark.
var Figure11Sizes = []int64{500_000_000, 1 * workload.GB, 2 * workload.GB, 4 * workload.GB, 8 * workload.GB, 16 * workload.GB}

// Figure11 reproduces Figure 11: end-to-end time to persist one checkpoint
// of varying size, per mechanism (SSD; Gemini over the network).
func Figure11() (Figure, error) {
	fig := Figure{
		ID:      "figure11",
		Title:   "Time to persist one checkpoint vs size (SSD, A100)",
		Columns: []string{"size_gb", "checkfreq_s", "gpm_s", "pccheck_s", "gemini_s"},
	}
	for _, size := range Figure11Sizes {
		// An isolated checkpoint: huge interval, long iteration so nothing
		// overlaps or contends.
		model := workload.Model{
			Name: "synthetic", CheckpointBytes: size,
			IterTime: 10 * time.Minute, Nodes: 1, Params: size / 12,
		}
		row := []string{f64(float64(size) / workload.GB)}
		for _, a := range []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.GPM, perfmodel.PCcheck, perfmodel.Gemini} {
			cfg := sim.Config{
				Algo: a, Model: model, Platform: workload.A100GCP,
				Interval: 1, Iterations: 3, Concurrent: 1, Writers: 4,
			}
			res, err := sim.Run(cfg)
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.AvgPersist))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure12 reproduces Figure 12: VGG-16 slowdown versus checkpoint interval
// for varying numbers of concurrent checkpoints.
func Figure12() (Figure, error) {
	model, err := workload.ByName("VGG16")
	if err != nil {
		return Figure{}, err
	}
	ns := []int{1, 2, 4, 8}
	fig := Figure{
		ID:      "figure12",
		Title:   "VGG-16 slowdown vs checkpoint interval for N concurrent checkpoints",
		Columns: []string{"interval"},
	}
	for _, n := range ns {
		fig.Columns = append(fig.Columns, fmt.Sprintf("slowdown_N%d", n))
	}
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, n := range ns {
			res, err := sim.Run(sim.Config{
				Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
				Interval: f, Concurrent: n, Writers: 2,
			})
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.Slowdown))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure13 reproduces Figure 13: OPT-350M slowdown at a fixed interval of 10
// iterations, varying the number of parallel writer threads per checkpoint.
func Figure13() (Figure, error) {
	model, err := workload.ByName("OPT-350M")
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:      "figure13",
		Title:   "OPT-350M slowdown at f=10 vs parallel writer threads per checkpoint",
		Columns: []string{"writers", "slowdown_N1", "slowdown_N2", "slowdown_N3"},
	}
	for _, p := range []int{1, 2, 3, 4} {
		row := []string{strconv.Itoa(p)}
		for _, n := range []int{1, 2, 3} {
			res, err := sim.Run(sim.Config{
				Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
				Interval: 10, Concurrent: n, Writers: p,
			})
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.Slowdown))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Figure14 reproduces Figure 14: OPT-1.3B throughput at f=15 for varying
// DRAM budgets and pipeline chunk counts (p_x = pipelined with x chunks).
func Figure14() (Figure, error) {
	model, err := workload.ByName("OPT-1.3B")
	if err != nil {
		return Figure{}, err
	}
	m := model.CheckpointBytes
	fig := Figure{
		ID:      "figure14",
		Title:   "OPT-1.3B throughput at f=15, varying DRAM budget and pipeline chunking",
		Columns: []string{"dram_over_m", "no_pipeline", "p3", "p6"},
	}
	for _, mult := range []float64{1.0, 1.5, 2.0} {
		row := []string{f64(mult)}
		for _, chunks := range []int{1, 3, 6} {
			res, err := sim.Run(sim.Config{
				Algo: perfmodel.PCcheck, Model: model, Platform: workload.A100GCP,
				Interval: 15, Concurrent: 2, Writers: 3,
				Chunks: chunks, DRAMBytes: int64(mult * float64(m)),
			})
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.Throughput))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// FigureH100 reproduces the §5.2.1 H100 variant: OPT-1.3B on a
// Standard_NC40ads_H100_v5-class machine, where iteration time halves and
// disk bandwidth doubles. The paper reports "similar patterns for PCcheck
// and the baselines"; the artefact lets that be checked against the A100
// panel of Figure 8.
func FigureH100() (Figure, error) {
	model, err := workload.ByName("OPT-1.3B")
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:      "figure8-h100",
		Title:   "OPT-1.3B training throughput vs checkpoint interval (NVMe, H100)",
		Columns: []string{"interval", "checkfreq_iters_per_sec", "gpm_iters_per_sec", "pccheck_iters_per_sec", "no_checkpoint_iters_per_sec"},
	}
	base := 1.0 / model.IterTimeOn(workload.H100Azure).Seconds()
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, a := range []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.GPM, perfmodel.PCcheck} {
			res, err := runAlgo(a, model, workload.H100Azure, f)
			if err != nil {
				return Figure{}, err
			}
			row = append(row, f64(res.Throughput))
		}
		row = append(row, f64(base))
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// RecoveryTimes reproduces the §5.2.2 discussion as an artefact: mean
// recovery time versus checkpoint interval for each mechanism on OPT-1.3B
// (load the checkpoint + re-execute the mean lost work + reattach the disk).
func RecoveryTimes() (Figure, error) {
	model, err := workload.ByName("OPT-1.3B")
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:      "section5.2.2-recovery",
		Title:   "OPT-1.3B mean recovery time (s) vs checkpoint interval per mechanism",
		Columns: []string{"interval", "checkfreq_s", "gpm_s", "pccheck_s"},
	}
	for _, f := range Intervals {
		row := []string{strconv.Itoa(f)}
		for _, a := range []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.GPM, perfmodel.PCcheck} {
			res, err := runAlgo(a, model, workload.A100GCP, f)
			if err != nil {
				return Figure{}, err
			}
			rec := recoverySeconds(a, model, workload.A100GCP, res) + attachSeconds(a, workload.A100GCP)
			row = append(row, f64(rec))
		}
		fig.Rows = append(fig.Rows, row)
	}
	return fig, nil
}

// Table1 reproduces Table 1: memory/storage footprint per algorithm, in
// units of the checkpoint size m.
func Table1(n int) (Figure, error) {
	fig := Figure{
		ID:      "table1",
		Title:   "Memory footprint in units of checkpoint size m (N = concurrent checkpoints)",
		Columns: []string{"algorithm", "gpu_mem", "dram", "storage", "remote_dram"},
	}
	for _, a := range []perfmodel.Algorithm{perfmodel.CheckFreq, perfmodel.GPM, perfmodel.Gemini, perfmodel.PCcheck} {
		fp, err := perfmodel.FootprintOf(a, n)
		if err != nil {
			return Figure{}, err
		}
		dram := f64(fp.DRAMHigh)
		if fp.DRAMLow != fp.DRAMHigh {
			dram = fmt.Sprintf("%s to %s", f64(fp.DRAMLow), f64(fp.DRAMHigh))
		}
		fig.Rows = append(fig.Rows, []string{a.String(), f64(fp.GPUMem), dram, f64(fp.Storage), f64(fp.NetBuffers)})
	}
	return fig, nil
}

// Table3 reproduces Table 3: the evaluated models.
func Table3() (Figure, error) {
	fig := Figure{
		ID:      "table3",
		Title:   "Evaluated models (checkpoint includes model and optimizer state)",
		Columns: []string{"model", "dataset", "batch_a100", "batch_rtx", "checkpoint_gb", "nodes"},
	}
	for _, m := range workload.Zoo {
		if m.Name == "OPT-350M" {
			continue // not part of Table 3 (used only by Figure 13)
		}
		fig.Rows = append(fig.Rows, []string{
			m.Name, m.Dataset,
			strconv.Itoa(m.BatchA100), strconv.Itoa(m.BatchRTX),
			f64(float64(m.CheckpointBytes) / workload.GB),
			strconv.Itoa(m.Nodes),
		})
	}
	return fig, nil
}

// All regenerates every artefact. Keyed by ID.
func All() (map[string]Figure, error) {
	out := make(map[string]Figure)
	add := func(f Figure, err error) error {
		if err != nil {
			return err
		}
		out[f.ID] = f
		return nil
	}
	if err := add(Figure1()); err != nil {
		return nil, err
	}
	if err := add(Figure2()); err != nil {
		return nil, err
	}
	for _, m := range Figure8Models {
		if err := add(Figure8(m)); err != nil {
			return nil, err
		}
		if err := add(Figure9(m)); err != nil {
			return nil, err
		}
	}
	if err := add(Figure10()); err != nil {
		return nil, err
	}
	if err := add(FigureH100()); err != nil {
		return nil, err
	}
	if err := add(RecoveryTimes()); err != nil {
		return nil, err
	}
	if err := add(Figure11()); err != nil {
		return nil, err
	}
	if err := add(Figure12()); err != nil {
		return nil, err
	}
	if err := add(Figure13()); err != nil {
		return nil, err
	}
	if err := add(Figure14()); err != nil {
		return nil, err
	}
	if err := add(Table1(3)); err != nil {
		return nil, err
	}
	if err := add(Table3()); err != nil {
		return nil, err
	}
	return out, nil
}
