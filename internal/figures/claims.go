package figures

import (
	"fmt"
	"strconv"

	"pccheck/internal/perfmodel"
	"pccheck/internal/sim"
	"pccheck/internal/workload"
)

// Claims encodes the paper's headline quantitative claims as machine-checked
// assertions against the reproduction: each claim regenerates the relevant
// artefact and tests whether the measured value falls in an acceptance band
// around the published number. `pccheck-bench -claims` prints the table;
// TestHeadlineClaims requires every claim to hold.

// Claim is one checkable statement from the paper.
type Claim struct {
	// ID is a short handle, Source the paper location.
	ID, Source string
	// Statement is the paper's wording (condensed).
	Statement string
	// Paper is the published value, Measured the reproduction's.
	Paper, Measured float64
	// Lo and Hi bound the acceptance band for Measured.
	Lo, Hi float64
	// OK reports whether Measured ∈ [Lo, Hi].
	OK bool
}

func check(id, source, statement string, paper, measured, lo, hi float64) Claim {
	return Claim{
		ID: id, Source: source, Statement: statement,
		Paper: paper, Measured: measured, Lo: lo, Hi: hi,
		OK: measured >= lo && measured <= hi,
	}
}

// CheckClaims evaluates every headline claim.
func CheckClaims() ([]Claim, error) {
	var claims []Claim

	opt13b, err := workload.ByName("OPT-1.3B")
	if err != nil {
		return nil, err
	}
	bloom, err := workload.ByName("BLOOM-7B")
	if err != nil {
		return nil, err
	}
	vgg, err := workload.ByName("VGG16")
	if err != nil {
		return nil, err
	}

	// §5.2.3: OPT-1.3B at f=10 — PCcheck 0.5 it/s, CheckFreq 0.256 it/s.
	pc10, err := runAlgo(perfmodel.PCcheck, opt13b, workload.A100GCP, 10)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("opt13b-pccheck-f10", "§5.2.3",
		"OPT-1.3B @ f=10: PCcheck sustains ≈0.5 iters/s", 0.5, pc10.Throughput, 0.40, 0.60))
	cf10, err := runAlgo(perfmodel.CheckFreq, opt13b, workload.A100GCP, 10)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("opt13b-checkfreq-f10", "§5.2.3",
		"OPT-1.3B @ f=10: CheckFreq sustains ≈0.256 iters/s", 0.256, cf10.Throughput, 0.20, 0.31))

	// §5.2.1: OPT-1.3B at f=50 — GPM 1.9×, CheckFreq 1.17×, PCcheck 1.02×.
	gpm50, err := runAlgo(perfmodel.GPM, opt13b, workload.A100GCP, 50)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("opt13b-gpm-f50", "§5.2.1",
		"OPT-1.3B @ f=50: GPM slowdown ≈1.9×", 1.9, gpm50.Slowdown, 1.4, 2.4))
	cf50, err := runAlgo(perfmodel.CheckFreq, opt13b, workload.A100GCP, 50)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("opt13b-checkfreq-f50", "§5.2.1",
		"OPT-1.3B @ f=50: CheckFreq slowdown ≈1.17×", 1.17, cf50.Slowdown, 1.05, 1.45))
	pc50, err := runAlgo(perfmodel.PCcheck, opt13b, workload.A100GCP, 50)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("opt13b-pccheck-f50", "§5.2.1",
		"OPT-1.3B @ f=50: PCcheck slowdown ≈1.02×", 1.02, pc50.Slowdown, 1.0, 1.10))

	// Figure 1/§1: CheckFreq on VGG16 slows training ≈57× at f=1.
	vggCf1, err := runAlgo(perfmodel.CheckFreq, vgg, workload.A100GCP, 1)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("vgg-checkfreq-f1", "§2.2",
		"VGG16 @ f=1: CheckFreq slowdown ≈57×", 57, vggCf1.Slowdown, 30, 90))

	// §5.2.1: BLOOM-7B — PCcheck <1.02× for f=10..100; Gemini 1.65–1.08×.
	bloomPc10, err := runAlgo(perfmodel.PCcheck, bloom, workload.A100GCP, 10)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("bloom-pccheck-f10", "§5.2.1",
		"BLOOM-7B @ f=10: PCcheck slowdown <1.02×", 1.02, bloomPc10.Slowdown, 1.0, 1.05))
	bloomGem10, err := runAlgo(perfmodel.Gemini, bloom, workload.A100GCP, 10)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("bloom-gemini-f10", "§5.2.1",
		"BLOOM-7B @ f=10: Gemini slowdown ≈1.65×", 1.65, bloomGem10.Slowdown, 1.4, 2.0))
	bloomGem100, err := runAlgo(perfmodel.Gemini, bloom, workload.A100GCP, 100)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("bloom-gemini-f100", "§5.2.1",
		"BLOOM-7B @ f=100: Gemini slowdown ≈1.08×", 1.08, bloomGem100.Slowdown, 1.02, 1.15))

	// Figure 11: PCcheck persists a checkpoint up to ~1.9× faster than
	// CheckFreq/GPM.
	fig11, err := Figure11()
	if err != nil {
		return nil, err
	}
	last := len(fig11.Rows) - 1
	cfS, _ := strconv.ParseFloat(fig11.Rows[last][1], 64)
	pcS, _ := strconv.ParseFloat(fig11.Rows[last][3], 64)
	claims = append(claims, check("fig11-persist-ratio", "§5.3",
		"Persist 16 GB: PCcheck up to ~1.9× faster than CheckFreq", 1.9, cfS/pcS, 1.4, 2.4))

	// Figure 2/abstract: PCcheck goodput up to 2.86× over the baselines on
	// the spot trace (max ratio across models and intervals; we check
	// OPT-1.3B where the paper quotes 1.77× at f=10).
	tr := DefaultTrace()
	pcGood, err := GoodputOf(perfmodel.PCcheck, opt13b, workload.A100GCP, pc10, tr)
	if err != nil {
		return nil, err
	}
	cfGood, err := GoodputOf(perfmodel.CheckFreq, opt13b, workload.A100GCP, cf10, tr)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("goodput-ratio-f10", "§5.2.3",
		"OPT-1.3B @ f=10 on the spot trace: PCcheck/CheckFreq goodput ≈1.77×", 1.77, pcGood/cfGood, 1.4, 2.5))

	// §5.2.3: comparing each baseline's PEAK goodput (across intervals)
	// with PCcheck's peak, PCcheck leads by up to 1.27× (GPM), 1.25×
	// (CheckFreq) and 1.44× (Gemini). We evaluate the peaks on OPT-1.3B
	// (GPM/CheckFreq) and BLOOM-7B (Gemini).
	peak := func(algo perfmodel.Algorithm, model workload.Model) (float64, error) {
		best := 0.0
		for _, f := range Intervals {
			res, err := runAlgo(algo, model, workload.A100GCP, f)
			if err != nil {
				return 0, err
			}
			g, err := GoodputOf(algo, model, workload.A100GCP, res, tr)
			if err != nil {
				return 0, err
			}
			if g > best {
				best = g
			}
		}
		return best, nil
	}
	pcPeak, err := peak(perfmodel.PCcheck, opt13b)
	if err != nil {
		return nil, err
	}
	gpmPeak, err := peak(perfmodel.GPM, opt13b)
	if err != nil {
		return nil, err
	}
	cfPeak, err := peak(perfmodel.CheckFreq, opt13b)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("peak-goodput-vs-gpm", "§5.2.3",
		"Peak goodput: PCcheck up to ≈1.27× over GPM", 1.27, pcPeak/gpmPeak, 1.05, 1.6))
	claims = append(claims, check("peak-goodput-vs-checkfreq", "§5.2.3",
		"Peak goodput: PCcheck up to ≈1.25× over CheckFreq", 1.25, pcPeak/cfPeak, 1.02, 1.5))
	pcBloomPeak, err := peak(perfmodel.PCcheck, bloom)
	if err != nil {
		return nil, err
	}
	gemBloomPeak, err := peak(perfmodel.Gemini, bloom)
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("peak-goodput-vs-gemini", "§5.2.3",
		"Peak goodput: PCcheck up to ≈1.44× over Gemini (BLOOM-7B)", 1.44, pcBloomPeak/gemBloomPeak, 1.02, 1.7))

	// §5.4.2 / Figure 13: 3 writer threads vs 1 gain ≈1.36× at N=1,
	// shrinking with N.
	s11, err := sim.Run(sim.Config{Algo: perfmodel.PCcheck, Model: mustOPT350(), Platform: workload.A100GCP, Interval: 10, Concurrent: 1, Writers: 1})
	if err != nil {
		return nil, err
	}
	s13, err := sim.Run(sim.Config{Algo: perfmodel.PCcheck, Model: mustOPT350(), Platform: workload.A100GCP, Interval: 10, Concurrent: 1, Writers: 3})
	if err != nil {
		return nil, err
	}
	claims = append(claims, check("fig13-writer-gain", "§5.4.2",
		"OPT-350M @ f=10, N=1: 3 writers vs 1 gain ≈1.36×", 1.36, s11.Slowdown/s13.Slowdown, 1.15, 3.5))

	// §5.4.3 / Figure 14: DRAM budget m costs ≤7% vs 2m.
	fig14, err := Figure14()
	if err != nil {
		return nil, err
	}
	var thrM, thr2M float64
	for _, row := range fig14.Rows {
		v, _ := strconv.ParseFloat(row[3], 64) // p6 column
		switch row[0] {
		case "1":
			thrM = v
		case "2":
			thr2M = v
		}
	}
	claims = append(claims, check("fig14-dram-m", "§5.4.3",
		"OPT-1.3B @ f=15: DRAM budget m costs ≤7% vs 2m", 0.07, 1-thrM/thr2M, 0, 0.12))

	return claims, nil
}

func mustOPT350() workload.Model {
	m, err := workload.ByName("OPT-350M")
	if err != nil {
		panic(err)
	}
	return m
}

// FormatClaims renders the claims as an aligned text table.
func FormatClaims(claims []Claim) string {
	out := fmt.Sprintf("%-22s %-8s %9s %9s   %s\n", "claim", "source", "paper", "measured", "status")
	for _, c := range claims {
		status := "ok"
		if !c.OK {
			status = fmt.Sprintf("OUT OF BAND [%.3g, %.3g]", c.Lo, c.Hi)
		}
		out += fmt.Sprintf("%-22s %-8s %9.3f %9.3f   %s\n", c.ID, c.Source, c.Paper, c.Measured, status)
		out += fmt.Sprintf("    %s\n", c.Statement)
	}
	return out
}
