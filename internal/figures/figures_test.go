package figures

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"pccheck/internal/perfmodel"
	"pccheck/internal/sim"
	"pccheck/internal/trace"
	"pccheck/internal/workload"
)

func cell(t *testing.T, fig Figure, row int, col string) float64 {
	t.Helper()
	for i, c := range fig.Columns {
		if c == col {
			v, err := strconv.ParseFloat(fig.Rows[row][i], 64)
			if err != nil {
				t.Fatalf("%s row %d col %s: %v", fig.ID, row, col, err)
			}
			return v
		}
	}
	t.Fatalf("%s has no column %q (have %v)", fig.ID, col, fig.Columns)
	return 0
}

func lastRow(fig Figure) int { return len(fig.Rows) - 1 }

func TestFigure1Shape(t *testing.T) {
	fig, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != len(Intervals) {
		t.Fatalf("rows = %d", len(fig.Rows))
	}
	// Overheads shrink with the interval; recovery grows.
	first, last := 0, lastRow(fig)
	if cell(t, fig, first, "checkfreq_slowdown") <= cell(t, fig, last, "checkfreq_slowdown") {
		t.Fatal("CheckFreq slowdown should fall as the interval grows")
	}
	if cell(t, fig, first, "recovery_seconds") >= cell(t, fig, last, "recovery_seconds") {
		t.Fatal("recovery time should grow with the interval")
	}
	// Paper: >10% overhead when checkpointing every ≤50 iterations. Our
	// calibration reproduces the effect clearly at f≤10 (see EXPERIMENTS.md
	// for the f=25/50 deviation discussion).
	for i, f := range Intervals {
		if f <= 10 {
			if s := cell(t, fig, i, "checkfreq_slowdown"); s < 1.10 {
				t.Fatalf("CheckFreq at f=%d slowdown %.3f; paper reports >10%%", f, s)
			}
		}
	}
}

func TestFigure2GoodputShapes(t *testing.T) {
	fig, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	// PCcheck's peak goodput approaches the ideal peak; CheckFreq and
	// Gemini peak well below (paper: 66% and 58% of ideal).
	peak := func(col string) float64 {
		best := 0.0
		for i := range fig.Rows {
			if v := cell(t, fig, i, col); v > best {
				best = v
			}
		}
		return best
	}
	idealPeak := peak("ideal")
	pcPeak := peak("pccheck")
	cfPeak := peak("checkfreq")
	gemPeak := peak("gemini")
	if pcPeak < 0.85*idealPeak {
		t.Fatalf("PCcheck peak %.4f below 85%% of ideal %.4f", pcPeak, idealPeak)
	}
	if cfPeak > 0.80*idealPeak {
		t.Fatalf("CheckFreq peak %.4f too close to ideal %.4f (paper: 66%%)", cfPeak, idealPeak)
	}
	if gemPeak > 0.85*idealPeak {
		t.Fatalf("Gemini peak %.4f too close to ideal %.4f (paper: 58%%)", gemPeak, idealPeak)
	}
}

func TestFigure8PanelShapes(t *testing.T) {
	for _, name := range Figure8Models {
		fig, err := Figure8(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		last := lastRow(fig)
		base := cell(t, fig, last, "no_checkpoint_iters_per_sec")
		pc := cell(t, fig, last, "pccheck_iters_per_sec")
		cf := cell(t, fig, last, "checkfreq_iters_per_sec")
		// At f=100 PCcheck is within a few percent of no-checkpoint.
		if pc < 0.93*base {
			t.Fatalf("%s: PCcheck at f=100 reaches only %.1f%% of base", name, 100*pc/base)
		}
		// PCcheck ≥ CheckFreq at every interval.
		for i := range fig.Rows {
			p, c := cell(t, fig, i, "pccheck_iters_per_sec"), cell(t, fig, i, "checkfreq_iters_per_sec")
			if p < c*0.98 {
				t.Fatalf("%s row %d: PCcheck %.4f below CheckFreq %.4f", name, i, p, c)
			}
		}
		_ = cf
		// Distributed panels carry a Gemini column.
		hasGemini := false
		for _, c := range fig.Columns {
			if strings.HasPrefix(c, "gemini") {
				hasGemini = true
			}
		}
		m := mustZoo(t, name)
		if (m.Nodes > 1) != hasGemini {
			t.Fatalf("%s: gemini column presence wrong (nodes=%d)", name, m.Nodes)
		}
	}
}

func TestFigure9GoodputOrdering(t *testing.T) {
	// PCcheck dominates every baseline's goodput at every interval on
	// OPT-1.3B (paper: up to 2.86× over CheckFreq).
	fig, err := Figure9("OPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	var maxRatio float64
	for i := range fig.Rows {
		pc := cell(t, fig, i, "pccheck_goodput")
		cf := cell(t, fig, i, "checkfreq_goodput")
		gpm := cell(t, fig, i, "gpm_goodput")
		if pc < cf*0.98 || pc < gpm*0.98 {
			t.Fatalf("row %d: PCcheck %.4f under a baseline (cf %.4f, gpm %.4f)", i, pc, cf, gpm)
		}
		if cf > 0 && pc/cf > maxRatio {
			maxRatio = pc / cf
		}
	}
	if maxRatio < 1.5 {
		t.Fatalf("max PCcheck/CheckFreq goodput ratio %.2f; paper reports up to 2.86×", maxRatio)
	}
}

func TestFigure10PMEMBeatsSSD(t *testing.T) {
	fig, err := Figure10()
	if err != nil {
		t.Fatal(err)
	}
	// On PMEM even f=10 is affordable for PCcheck on BERT: 4 GB/(10×0.32s)
	// = 1.25 GB/s ≪ 4.01 GB/s.
	for i, f := range Intervals {
		if f != 10 {
			continue
		}
		base := cell(t, fig, i, "no_checkpoint_iters_per_sec")
		pc := cell(t, fig, i, "pccheck_iters_per_sec")
		// The remaining cost is the T→U snapshot-copy stall the paper
		// explicitly chooses not to eliminate (§3.1): 4 GB over PCIe3 x8
		// per 10 iterations.
		if pc < 0.85*base {
			t.Fatalf("PMEM BERT f=10: PCcheck %.3f vs base %.3f", pc, base)
		}
		cf := cell(t, fig, i, "checkfreq_iters_per_sec")
		if pc < cf {
			t.Fatal("PCcheck must still beat CheckFreq on PMEM")
		}
	}
}

func TestFigure11Monotonic(t *testing.T) {
	fig, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	cols := []string{"checkfreq_s", "gpm_s", "pccheck_s", "gemini_s"}
	for _, col := range cols {
		for i := 1; i < len(fig.Rows); i++ {
			if cell(t, fig, i, col) <= cell(t, fig, i-1, col) {
				t.Fatalf("%s not increasing with size at row %d", col, i)
			}
		}
	}
	// Ordering at 16 GB: gemini < pccheck < gpm < checkfreq, and PCcheck
	// beats CheckFreq by up to ~1.9×.
	last := lastRow(fig)
	gem, pc := cell(t, fig, last, "gemini_s"), cell(t, fig, last, "pccheck_s")
	gpm, cf := cell(t, fig, last, "gpm_s"), cell(t, fig, last, "checkfreq_s")
	if !(gem < pc && pc < gpm && gpm < cf) {
		t.Fatalf("16 GB ordering: gemini %.1f, pccheck %.1f, gpm %.1f, checkfreq %.1f", gem, pc, gpm, cf)
	}
	if r := cf / pc; r < 1.4 || r > 2.4 {
		t.Fatalf("CheckFreq/PCcheck = %.2f, paper ≤ ~1.9", r)
	}
}

func TestFigure12ConcurrencyHelps(t *testing.T) {
	fig, err := Figure12()
	if err != nil {
		t.Fatal(err)
	}
	// "Using more than one checkpoint is consistently better" and no more
	// than 4 are needed.
	for i := range fig.Rows {
		n1 := cell(t, fig, i, "slowdown_N1")
		n2 := cell(t, fig, i, "slowdown_N2")
		n4 := cell(t, fig, i, "slowdown_N4")
		n8 := cell(t, fig, i, "slowdown_N8")
		if n2 > n1*1.001 {
			t.Fatalf("row %d: N=2 (%.2f) worse than N=1 (%.2f)", i, n2, n1)
		}
		if n8 < n4*0.9 {
			t.Fatalf("row %d: N=8 (%.2f) still far better than N=4 (%.2f); SSD should be saturated", i, n8, n4)
		}
	}
}

func TestFigure13WriterGains(t *testing.T) {
	fig, err := Figure13()
	if err != nil {
		t.Fatal(err)
	}
	// Gains from 1→3 threads, shrinking as N grows (paper: 1.36×, 1.16×,
	// 1.13× for N=1,2,3).
	row := func(p int) int { return p - 1 }
	g1 := cell(t, fig, row(1), "slowdown_N1") / cell(t, fig, row(3), "slowdown_N1")
	g2 := cell(t, fig, row(1), "slowdown_N2") / cell(t, fig, row(3), "slowdown_N2")
	g3 := cell(t, fig, row(1), "slowdown_N3") / cell(t, fig, row(3), "slowdown_N3")
	if g1 < 1.10 {
		t.Fatalf("N=1 writer gain %.2f; paper 1.36", g1)
	}
	if !(g1 >= g2 && g2 >= g3*0.98) {
		t.Fatalf("gains should shrink with N: %.2f, %.2f, %.2f", g1, g2, g3)
	}
}

func TestFigure14DRAMTolerance(t *testing.T) {
	fig, err := Figure14()
	if err != nil {
		t.Fatal(err)
	}
	// M=m costs ≤ ~10% vs M=2m (paper: ≤7%); pipelining ≥ staging.
	var rowM, row2M int
	for i := range fig.Rows {
		switch fig.Rows[i][0] {
		case "1":
			rowM = i
		case "2":
			row2M = i
		}
	}
	tight := cell(t, fig, rowM, "p6")
	full := cell(t, fig, row2M, "p6")
	if tight < 0.88*full {
		t.Fatalf("DRAM=m throughput %.4f vs 2m %.4f", tight, full)
	}
	if p6, np := cell(t, fig, row2M, "p6"), cell(t, fig, row2M, "no_pipeline"); p6 < np*0.999 {
		t.Fatalf("pipelined %.4f below non-pipelined %.4f", p6, np)
	}
}

// §5.2.1: on the H100 machine "we observe similar patterns … since the
// iteration time was halved, and the disk bandwidth doubled" — the relative
// standings at each interval must match the A100 panel.
func TestFigureH100SimilarPatterns(t *testing.T) {
	h100, err := FigureH100()
	if err != nil {
		t.Fatal(err)
	}
	a100, err := Figure8("OPT-1.3B")
	if err != nil {
		t.Fatal(err)
	}
	for i := range h100.Rows {
		// Iteration time halved + disk doubled ⇒ slowdown curves coincide,
		// so normalized throughput (vs no-checkpoint) matches within 15%.
		for _, col := range []string{"pccheck_iters_per_sec", "checkfreq_iters_per_sec", "gpm_iters_per_sec"} {
			h := cell(t, h100, i, col) / cell(t, h100, i, "no_checkpoint_iters_per_sec")
			a := cell(t, a100, i, col) / cell(t, a100, i, "no_checkpoint_iters_per_sec")
			if ratio := h / a; ratio < 0.85 || ratio > 1.18 {
				t.Fatalf("row %d %s: H100 normalized %.3f vs A100 %.3f — patterns should be similar", i, col, h, a)
			}
		}
		// Absolute throughput roughly doubles.
		h := cell(t, h100, i, "pccheck_iters_per_sec")
		a := cell(t, a100, i, "pccheck_iters_per_sec")
		if h < 1.5*a {
			t.Fatalf("row %d: H100 PCcheck %.3f not ≈2× A100 %.3f", i, h, a)
		}
	}
}

func TestTables(t *testing.T) {
	t1, err := Table1(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 4 {
		t.Fatalf("table1 rows = %d", len(t1.Rows))
	}
	// PCcheck with N=3 needs 4m of storage.
	found := false
	for _, r := range t1.Rows {
		if r[0] == "pccheck" {
			found = true
			if r[3] != "4" {
				t.Fatalf("pccheck storage = %s, want 4", r[3])
			}
		}
	}
	if !found {
		t.Fatal("table1 missing pccheck row")
	}
	t3, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 6 {
		t.Fatalf("table3 rows = %d, want 6 models", len(t3.Rows))
	}
}

func TestWriteCSV(t *testing.T) {
	fig, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 7 { // header + 6 models
		t.Fatalf("CSV lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "model,dataset") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestAllRegeneratesEverything(t *testing.T) {
	figs, err := All()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"figure1", "figure2", "figure10", "figure8-h100", "figure11", "figure12", "figure13", "figure14",
		"section5.2.2-recovery", "table1", "table3",
	}
	for _, m := range Figure8Models {
		want = append(want, "figure8-"+m, "figure9-"+m)
	}
	for _, id := range want {
		fig, ok := figs[id]
		if !ok {
			t.Fatalf("missing artefact %s", id)
		}
		if len(fig.Rows) == 0 || len(fig.Columns) == 0 {
			t.Fatalf("artefact %s is empty", id)
		}
	}
	if len(figs) != len(want) {
		t.Fatalf("got %d artefacts, want %d", len(figs), len(want))
	}
}

func mustZoo(t *testing.T, name string) workload.Model {
	t.Helper()
	m, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// §5.2.2's artefact. Recovery versus interval is U-shaped: at f=1 the few
// lost iterations must be re-executed at the checkpoint-crippled effective
// rate (CheckFreq runs 42 s/iteration there), while at large f whole
// intervals of cheap iterations are lost. The informative regime is the
// right arm: from f=10 on, recovery grows with the interval.
func TestRecoveryTimesShape(t *testing.T) {
	fig, err := RecoveryTimes()
	if err != nil {
		t.Fatal(err)
	}
	// Rows are Intervals = 1,10,25,50,100. The U's bottom sits wherever a
	// mechanism leaves its device-saturated regime, so assert the arms:
	// recovery rises from f=50 to f=100 for everyone, and the minimum is
	// never at an endpoint's f=1 (the overhead-dominated arm).
	for _, col := range []string{"checkfreq_s", "gpm_s", "pccheck_s"} {
		if cell(t, fig, 4, col) <= cell(t, fig, 3, col) {
			t.Fatalf("%s: recovery should rise from f=50 to f=100", col)
		}
		minIdx, minVal := 0, cell(t, fig, 0, col)
		for i := 1; i < len(fig.Rows); i++ {
			if v := cell(t, fig, i, col); v < minVal {
				minIdx, minVal = i, v
			}
		}
		if minIdx == 0 {
			t.Fatalf("%s: minimum recovery at f=1; the overhead arm is missing", col)
		}
	}
	// §5.2.2 anchor: CheckFreq at f=100 recovers in ≈80 s (plus the ~5.5 s
	// disk reattach our artefact includes).
	got := cell(t, fig, lastRow(fig), "checkfreq_s")
	if got < 56 || got > 110 {
		t.Fatalf("CheckFreq f=100 recovery = %.1f, paper ≈80 s", got)
	}
}

// Every headline claim of the paper must hold in the reproduction.
func TestHeadlineClaims(t *testing.T) {
	claims, err := CheckClaims()
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) < 10 {
		t.Fatalf("only %d claims checked", len(claims))
	}
	for _, c := range claims {
		if !c.OK {
			t.Errorf("%s (%s): measured %.3f outside [%.3f, %.3f] — %s",
				c.ID, c.Source, c.Measured, c.Lo, c.Hi, c.Statement)
		}
	}
	if t.Failed() {
		t.Log("\n" + FormatClaims(claims))
	}
}

// Robustness of the goodput conclusion to the synthetic trace: across many
// random preemption patterns, PCcheck's peak goodput (over intervals) never
// falls behind CheckFreq's peak on OPT-1.3B.
func TestGoodputDominanceAcrossTraceSeeds(t *testing.T) {
	model := mustZoo(t, "OPT-1.3B")
	results := map[perfmodel.Algorithm][]sim.Result{}
	for _, algo := range []perfmodel.Algorithm{perfmodel.PCcheck, perfmodel.CheckFreq} {
		for _, f := range Intervals {
			res, err := runAlgo(algo, model, workload.A100GCP, f)
			if err != nil {
				t.Fatal(err)
			}
			results[algo] = append(results[algo], res)
		}
	}
	peak := func(algo perfmodel.Algorithm, tr trace.Trace) float64 {
		best := 0.0
		for _, res := range results[algo] {
			g, err := GoodputOf(algo, model, workload.A100GCP, res, tr)
			if err != nil {
				t.Fatal(err)
			}
			if g > best {
				best = g
			}
		}
		return best
	}
	for seed := int64(1); seed <= 10; seed++ {
		tr := trace.Synthetic(trace.SyntheticConfig{Seed: seed})
		pcPeak := peak(perfmodel.PCcheck, tr)
		cfPeak := peak(perfmodel.CheckFreq, tr)
		if pcPeak < cfPeak {
			t.Fatalf("seed %d: PCcheck peak %.4f below CheckFreq peak %.4f", seed, pcPeak, cfPeak)
		}
	}
}

// Denser failure regimes shift everyone's optimum toward more frequent
// checkpointing — and widen PCcheck's advantage, the paper's core argument
// for spot clusters.
func TestDenserFailuresFavourPCcheckMore(t *testing.T) {
	model := mustZoo(t, "OPT-1.3B")
	pc, err := runAlgo(perfmodel.PCcheck, model, workload.A100GCP, 10)
	if err != nil {
		t.Fatal(err)
	}
	cf, err := runAlgo(perfmodel.CheckFreq, model, workload.A100GCP, 10)
	if err != nil {
		t.Fatal(err)
	}
	ratioAt := func(events int) float64 {
		tr := trace.Synthetic(trace.SyntheticConfig{Seed: 3, Events: events})
		pcG, err := GoodputOf(perfmodel.PCcheck, model, workload.A100GCP, pc, tr)
		if err != nil {
			t.Fatal(err)
		}
		cfG, err := GoodputOf(perfmodel.CheckFreq, model, workload.A100GCP, cf, tr)
		if err != nil {
			t.Fatal(err)
		}
		return pcG / cfG
	}
	sparse := ratioAt(8)
	dense := ratioAt(60)
	if dense < sparse {
		t.Fatalf("advantage should grow with failure density: %d events %.3f vs %d events %.3f",
			8, sparse, 60, dense)
	}
}
