package pccheck

import (
	"io"
	"net/http"

	"pccheck/internal/core"
	"pccheck/internal/obs"
	"pccheck/internal/obs/blackbox"
	"pccheck/internal/obs/decision"
	"pccheck/internal/storage"
)

// Observability: the flight recorder, latency histograms and the live
// metrics endpoint. The types here are aliases for internal/obs so that
// applications program entirely against the pccheck package; see
// docs/OBSERVABILITY.md for how each event and metric maps onto the
// paper's checkpoint pipeline.

// Observer receives one structured Event per checkpoint lifecycle phase.
// Emit is called from the persist hot path (writer goroutines, the
// publish loop), so implementations must be concurrency-safe and
// non-blocking; Recorder satisfies both.
type Observer = obs.Observer

// Event is a single flight-recorder sample: a timed span (slot wait,
// chunk copy, per-writer persist, barrier, …) or an instant (publish,
// CAS retry, fault). Events are plain values with no pointers, so
// emitting one never allocates.
type Event = obs.Event

// Phase identifies which part of the checkpoint pipeline an Event
// belongs to.
type Phase = obs.Phase

// Phases of the checkpoint pipeline, re-exported for matching against
// Event.Phase. See docs/OBSERVABILITY.md for what each one covers.
const (
	PhaseSave          = obs.PhaseSave          // one Save end to end
	PhaseSlotWait      = obs.PhaseSlotWait      // waiting for a free slot (§3.2)
	PhaseCopy          = obs.PhaseCopy          // source → DRAM chunk staging copy
	PhaseChunkWait     = obs.PhaseChunkWait     // waiting for a free DRAM chunk
	PhasePersist       = obs.PhasePersist       // one writer persisting one chunk
	PhaseSync          = obs.PhaseSync          // whole-payload sync (SSD path)
	PhaseHeader        = obs.PhaseHeader        // slot header persist
	PhaseBarrier       = obs.PhaseBarrier       // pointer-record BARRIER (§4.1)
	PhasePublish       = obs.PhasePublish       // CAS publish won
	PhaseObsolete      = obs.PhaseObsolete      // superseded before publishing
	PhaseCASRetry      = obs.PhaseCASRetry      // publish CAS retried
	PhaseIORetry       = obs.PhaseIORetry       // backoff before an I/O retry
	PhaseFault         = obs.PhaseFault         // transient device fault observed
	PhaseFaultInjected = obs.PhaseFaultInjected // fault-injection device fired
	PhaseSnapshot      = obs.PhaseSnapshot      // training-loop state snapshot
	PhaseRetune        = obs.PhaseRetune        // adaptive controller retuned
	PhaseAgree         = obs.PhaseAgree         // distributed commit round
	PhaseSaveFailed    = obs.PhaseSaveFailed    // a Save returned an error after starting
	PhaseAgreeGate     = obs.PhaseAgreeGate     // rank 0's per-round straggler record
	PhaseRankDead      = obs.PhaseRankDead      // rank 0 declared a rank dead (Value = cause)
	PhaseRankRejoined  = obs.PhaseRankRejoined  // a dead rank came back / resynced
	PhaseFrameDropped  = obs.PhaseFrameDropped  // a malformed or stale frame was discarded
	PhaseDeltaEncode   = obs.PhaseDeltaEncode   // diffing + encoding a delta record
	PhaseKeyframe      = obs.PhaseKeyframe      // a full checkpoint published in delta mode
	PhaseDecision      = obs.PhaseDecision      // a policy decision was recorded (Counter = decision seq)
	PhaseCrashMark     = obs.PhaseCrashMark     // crash boundary in a merged forensic timeline
)

// Recorder is the built-in Observer: a bounded lock-free event ring
// (flight recorder — when full, the oldest events are dropped) plus
// allocation-free latency histograms per phase. One Recorder may be
// shared by several Checkpointers, Loops and FaultDevices; all methods
// are safe for concurrent use.
type Recorder = obs.Recorder

// PhaseStats summarises one phase's latency distribution (count, total,
// p50/p95/p99, max).
type PhaseStats = obs.PhaseStats

// ObsSnapshot is a point-in-time view of a Recorder: outcome counters
// plus per-phase latency stats.
type ObsSnapshot = obs.Snapshot

// NewFlightRecorder builds a Recorder retaining the most recent capacity
// events (0 selects the default of 16384). Attach it via Config.Observer,
// then WriteTrace the ring into Perfetto-loadable JSON, scrape it with
// ServeMetrics, or inspect it directly via Snapshot.
func NewFlightRecorder(capacity int) *Recorder {
	return obs.NewRecorder(capacity)
}

// MetricsWriter renders Prometheus text exposition; Recorder and Ledger
// both implement it.
type MetricsWriter = obs.MetricsWriter

// ServeMetrics starts an HTTP server on addr (e.g. "127.0.0.1:9090"; an
// empty port picks a free one) exposing the recorder at /metrics
// (Prometheus text: per-phase latency summaries and outcome counters)
// and /debug/vars (expvar). Extra metrics writers — typically a *Ledger,
// adding the goodput/SLO gauge families — are appended to the /metrics
// output. It returns the server and its bound address; Close the server
// to stop.
func ServeMetrics(addr string, r *Recorder, extra ...MetricsWriter) (*http.Server, string, error) {
	return obs.Serve(addr, r, extra...)
}

// Ledger is the goodput ledger (§3.4, §5 of the paper): an Observer that
// attributes training wall-clock to compute and stall buckets, tracks the
// observed slowdown against the configured budget q, measures durable
// checkpoint staleness, and aggregates per-rank straggler statistics.
// Chain it in front of a Recorder with NewLedger and attach it as
// Config.Observer; Loop and AdaptiveLoop detect it there and feed it
// iteration timings automatically (AdaptiveLoop additionally retunes Eq.
// (3) from its measured write times).
type Ledger = obs.Ledger

// LedgerConfig tunes a Ledger (slowdown budget q, baseline iteration
// time, §3.4 model predictions for drift tracking).
type LedgerConfig = obs.LedgerConfig

// GoodputReport is a Ledger's point-in-time summary: goodput ratio,
// stall attribution, slowdown vs budget, staleness, model drift and the
// straggler table. All fields are JSON-tagged for machine export.
type GoodputReport = obs.GoodputReport

// RankAgreeStats is one rank's row in a GoodputReport straggler table.
type RankAgreeStats = obs.RankAgreeStats

// StallKind indexes a GoodputReport's wall-clock attribution buckets.
type StallKind = obs.StallKind

// Attribution buckets of the goodput ledger. Snapshot, drain and
// recovery stall training synchronously; slot-wait and persist overlap
// it (checkpoint-internal concurrency, not wall-clock extension).
const (
	StallSnapshot = obs.StallSnapshot
	StallSlotWait = obs.StallSlotWait
	StallPersist  = obs.StallPersist
	StallDrain    = obs.StallDrain
	StallRecovery = obs.StallRecovery
)

// NewLedger builds a goodput ledger that forwards every event to next
// (usually a *Recorder; nil for a stand-alone ledger). Attach the ledger
// — not next — as Config.Observer so it sees the full event stream.
func NewLedger(cfg LedgerConfig, next Observer) *Ledger {
	return obs.NewLedger(cfg, next)
}

// FormatGoodputReport renders rep as the human-readable end-of-run
// summary the pccheck commands print.
func FormatGoodputReport(w io.Writer, rep GoodputReport) {
	obs.FormatReport(w, rep)
}

// WriteTraceEvents renders events (from Recorder.TakeEvents) as Chrome
// trace-event JSON, loadable at https://ui.perfetto.dev. Prefer
// Recorder.WriteTrace unless you need to filter events first.
func WriteTraceEvents(w io.Writer, events []Event) error {
	return obs.WriteTraceEvents(w, events)
}

// Observer returns the observer this checkpointer was configured with
// (nil when observability is off).
func (c *Checkpointer) Observer() Observer {
	return c.engine.Observer()
}

// DecisionRecorder is the policy decision trace (internal/obs/decision):
// an Observer that records every tuning and coordination decision — the
// chosen action, its measured inputs, and the top-K rejected alternatives
// with the §3.4 model's predicted cost for each — and scores decisions
// with measured regret by joining them against the goodput ledger's
// slowdown blocks. Chain it between the Ledger and the flight Recorder
// (NewLedger(cfg, NewDecisionRecorder(dcfg, rec))) and attach the ledger
// as Config.Observer; AdaptiveLoop, the engine's slot admission and retry
// paths, the distributed coordinator, and the tuner all discover it in
// the chain automatically. A nil recorder costs one branch per decision
// point and zero allocations.
type DecisionRecorder = decision.Recorder

// DecisionConfig tunes a DecisionRecorder (ring capacity, rejected-
// alternative fan-out K, failure rate λ weighting staleness into retune
// candidate costs).
type DecisionConfig = decision.Config

// Decision is one recorded policy decision; DecisionAlternative one
// candidate action with its predicted cost; DecisionInputs the measured
// quantities the decision was derived from. All are JSON-tagged; the
// recorder's WriteJSONL exports one Decision per line.
type Decision = decision.Decision
type DecisionAlternative = decision.Alternative
type DecisionInputs = decision.Inputs

// DecisionSummary aggregates a decision log: totals, measurement-join
// coverage, and mean/max/total regret, overall and per kind.
type DecisionSummary = decision.Summary

// NewDecisionRecorder builds a decision recorder forwarding events to
// next (usually the flight Recorder).
func NewDecisionRecorder(cfg DecisionConfig, next Observer) *DecisionRecorder {
	return decision.New(cfg, next)
}

// FormatDecisionTable renders decisions worst-regret-first, up to limit
// rows (0 = all).
func FormatDecisionTable(w io.Writer, ds []Decision, limit int) {
	decision.FormatTable(w, ds, limit)
}

// BlackBoxConfig tunes the black-box telemetry region and its background
// flusher: region size, frame size, flush cadence, and how much of the
// event and decision tails each frame captures. The zero value disables
// the black box; set Bytes to enable it. Attach via Config.BlackBox.
type BlackBoxConfig = blackbox.Config

// PostMortem is a decoded black box: every CRC-valid frame of telemetry
// that survived the crash, oldest first, plus accessors for the merged
// event timeline, the final goodput report, and the last policy
// decisions. See PostMortemFile and Checkpointer.PostMortem.
type PostMortem = blackbox.PostMortem

// BlackBoxFrame is one telemetry frame of a PostMortem: the flight-ring
// tail, goodput report and decision tail one flush persisted.
type BlackBoxFrame = blackbox.Frame

// ErrNoBlackBox reports that a device was formatted without a black-box
// region (pre-forensics layout, or BlackBox disabled at Create time).
var ErrNoBlackBox = blackbox.ErrNoRegion

// FlushBlackBox persists one telemetry frame right now, outside the
// background cadence — call it from crash handlers or before risky
// operations to tighten the tail-loss window. It returns the frame's
// sequence number, or (0, nil) when no black box is attached.
func (c *Checkpointer) FlushBlackBox() (uint64, error) {
	return c.engine.FlushBlackBox()
}

// PostMortem decodes the black-box region of this checkpointer's own
// device — the live-process view of what a crash right now would leave
// behind. Most callers want PostMortemFile on the restart path instead.
func (c *Checkpointer) PostMortem() (*PostMortem, error) {
	return core.PostMortem(c.dev)
}

// PostMortemFile decodes the black-box telemetry region of a checkpoint
// file after a crash: the flight-ring tail, final goodput report and
// last policy decisions as of the last completed flush. Files created
// without BlackBox return ErrNoBlackBox. The pccheck-inspect command's
// -post-mortem flag renders the same data as text.
func PostMortemFile(path string) (*PostMortem, error) {
	dev, err := storage.ReopenSSD(path)
	if err != nil {
		return nil, err
	}
	defer dev.Close()
	return core.PostMortem(dev)
}
