package pccheck

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pccheck/internal/core"
	"pccheck/internal/storage"
	"pccheck/internal/tuner"
)

// Loop drives periodic checkpointing for an iterative workload: call Tick
// once per iteration and the Loop launches a concurrent Save every Interval
// iterations, never blocking the caller while a slot is available. This is
// the orchestration pattern of Figure 6 — training continues while up to
// Config.Concurrent checkpoints persist in the background.
//
// Contract: Tick is single-producer — it must be called from one goroutine
// (the training loop), which is also what keeps the snapshotted state
// quiescent. Drain and the accessors may be called from any goroutine, at
// any time, concurrently with Ticks.
//
// With Config.Delta set, each launched Save diffs against the previous
// checkpoint inside the engine; Loop needs no changes. Feeding the engine's
// DirtyTracker from Loop-launched saves is NOT supported: saves run in
// background goroutines and may complete out of mutation order, violating
// the tracker's coherence contract — leave the tracker unfed (content-hash
// fallback) or call Save synchronously from the training goroutine.
type Loop struct {
	ck       *Checkpointer
	interval int
	snapshot func() []byte
	obsv     Observer // cached from ck at construction; nil when off

	// ledger is set when the configured observer (or an element of its
	// chain head) is a *Ledger: the loop then feeds it per-iteration
	// wall-clock and drain waits for goodput attribution. Touched only on
	// the Tick goroutine (lastIter, pendCkpt) per the single-producer
	// contract.
	ledger   *Ledger
	lastIter time.Time
	pendCkpt bool

	// OnError, when non-nil, is invoked from the save goroutine with the
	// error of every failed Save, as it happens — the live alternative to
	// discovering one stale error at Drain. Set it before the first Tick;
	// callbacks for concurrent Saves may run concurrently.
	OnError func(err error)

	mu       sync.Mutex
	idle     *sync.Cond // signalled when inflight returns to zero
	inflight int
	firstErr error
	failed   int
	saves    int
}

// NewLoop wires a checkpointer to a workload. snapshot must return an
// immutable byte slice capturing the current state (the caller's equivalent
// of the update-step boundary U in the paper's timelines); it is invoked on
// the Tick goroutine so the state is quiescent while it runs.
func NewLoop(ck *Checkpointer, interval int, snapshot func() []byte) (*Loop, error) {
	if interval < 1 {
		return nil, fmt.Errorf("pccheck: checkpoint interval must be ≥ 1, got %d", interval)
	}
	if snapshot == nil {
		return nil, fmt.Errorf("pccheck: snapshot function required")
	}
	l := &Loop{ck: ck, interval: interval, snapshot: snapshot, obsv: ck.Observer()}
	l.ledger, _ = l.obsv.(*Ledger)
	l.idle = sync.NewCond(&l.mu)
	return l, nil
}

// emitSnapshot records the synchronous snapshot capture of iteration it as
// a loop-track span — the stall Tick imposed on training (§3.1: the state
// must be quiescent while it is captured).
func (l *Loop) emitSnapshot(ts int64, it int, bytes int64) {
	if l.obsv == nil {
		return
	}
	l.obsv.Emit(Event{
		TS: ts, Dur: time.Now().UnixNano() - ts,
		Phase: PhaseSnapshot, Bytes: bytes, Value: int64(it),
		Slot: -1, Writer: -1, Rank: -1,
	})
}

// Tick records the completion of iteration it (0-based) and, when it lands
// on the checkpoint interval, captures a snapshot and persists it in the
// background. The snapshot capture itself runs synchronously (state must be
// quiescent), the persist does not. Tick must be called from a single
// goroutine; see the Loop contract.
func (l *Loop) Tick(ctx context.Context, it int) {
	if l.ledger != nil {
		// Tick marks an iteration boundary: the gap since the previous Tick
		// is one iteration's wall-clock, attributed to the ledger. The
		// checkpointed flag rides one Tick behind the snapshot because the
		// capture in Tick n lands inside the n→n+1 gap.
		now := time.Now()
		if !l.lastIter.IsZero() {
			l.ledger.IterDone(now.Sub(l.lastIter), l.pendCkpt)
		}
		l.lastIter = now
		l.pendCkpt = false
	}
	if (it+1)%l.interval != 0 {
		return
	}
	var snapStart int64
	if l.obsv != nil {
		snapStart = time.Now().UnixNano()
	}
	payload := l.snapshot()
	l.emitSnapshot(snapStart, it, int64(len(payload)))
	l.pendCkpt = true
	l.mu.Lock()
	l.saves++
	l.inflight++
	l.mu.Unlock()
	go func() {
		_, err := l.ck.Save(ctx, payload)
		if err != nil {
			l.mu.Lock()
			if l.firstErr == nil {
				l.firstErr = err
			}
			l.failed++
			l.mu.Unlock()
			if cb := l.OnError; cb != nil {
				cb(err)
			}
		}
		l.mu.Lock()
		l.inflight--
		if l.inflight == 0 {
			l.idle.Broadcast()
		}
		l.mu.Unlock()
	}()
}

// Drain waits for all in-flight Saves and returns the first error any Save
// has hit since the loop was created (FailedSaves reports how many failed in
// total). Drain is idempotent and safe to call from any goroutine while
// Ticks continue — it returns once the Saves in flight at that moment (and
// any launched while it waits) have finished.
func (l *Loop) Drain() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight > 0 && l.ledger != nil {
		start := time.Now()
		for l.inflight > 0 {
			l.idle.Wait()
		}
		l.ledger.DrainDone(time.Since(start))
		return l.firstErr
	}
	for l.inflight > 0 {
		l.idle.Wait()
	}
	return l.firstErr
}

// Saves returns how many checkpoints the loop has initiated.
func (l *Loop) Saves() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.saves
}

// FailedSaves returns how many of those Saves failed.
func (l *Loop) FailedSaves() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// TuneInput describes a workload for automatic configuration (§3.4).
type TuneInput struct {
	// IterTime is the measured no-checkpoint iteration time t.
	IterTime time.Duration
	// CheckpointBytes is the snapshot size m.
	CheckpointBytes int64
	// MaxOverhead is the acceptable training slowdown q (e.g. 1.03 = 3%).
	MaxOverhead float64
	// DRAMBudget caps staging memory M (0 ⇒ 2m).
	DRAMBudget int64
	// StorageBudget caps device space S (0 ⇒ whatever the device holds).
	StorageBudget int64
}

// TuneResult is the derived configuration plus the measured evidence.
type TuneResult struct {
	// Config is ready to pass to Create.
	Config Config
	// Interval is f*, the minimum checkpoint interval (iterations) that
	// keeps slowdown within MaxOverhead.
	Interval int
	// Tw is the measured worst-case per-checkpoint write time at the
	// chosen concurrency.
	Tw time.Duration
	// Profile maps each candidate N to its measured Tw.
	Profile map[int]time.Duration
}

// Tune profiles the device at path (writing scratch checkpoints of
// CheckpointBytes) and returns the configuration PCcheck's tool would pick:
// the N minimising Tw/N, 1–4 writers, and f* = ceil(Tw/(N·q·t)). The file
// is formatted for the chosen configuration afterwards, ready for Create.
func Tune(path string, in TuneInput) (TuneResult, error) {
	// Profile against a device sized for the largest candidate.
	const maxN = 4
	dev, err := newProfilingDevice(path, maxN, in.CheckpointBytes)
	if err != nil {
		return TuneResult{}, err
	}
	defer dev.Close()
	res, err := tuner.Profile(dev, tuner.Input{
		IterTime:        in.IterTime,
		CheckpointBytes: in.CheckpointBytes,
		DRAMBudget:      in.DRAMBudget,
		StorageBudget:   in.StorageBudget,
		MaxOverhead:     in.MaxOverhead,
		MaxN:            maxN,
	})
	if err != nil {
		return TuneResult{}, err
	}
	return TuneResult{
		Config: Config{
			MaxBytes:   in.CheckpointBytes,
			Concurrent: res.N,
			Writers:    res.Writers,
			ChunkBytes: res.ChunkBytes,
			DRAMBudget: in.DRAMBudget,
		},
		Interval: res.Interval,
		Tw:       res.Tw,
		Profile:  res.Profile,
	}, nil
}

// newProfilingDevice opens a file-backed device big enough for maxN
// concurrent checkpoints of m bytes.
func newProfilingDevice(path string, maxN int, m int64) (storage.Device, error) {
	if m <= 0 {
		return nil, fmt.Errorf("pccheck: TuneInput.CheckpointBytes must be positive, got %d", m)
	}
	return storage.OpenSSD(path, core.DeviceBytes(maxN, m))
}
