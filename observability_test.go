package pccheck

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestObservabilityEndToEnd exercises the full public surface: a recorder
// attached via Config.Observer, concurrent Saves through a Loop, the
// Prometheus endpoint, and the Perfetto trace export.
func TestObservabilityEndToEnd(t *testing.T) {
	rec := NewFlightRecorder(0)
	ck, _, err := CreateVolatile(Config{
		MaxBytes:   64 << 10,
		Concurrent: 2,
		Writers:    2,
		ChunkBytes: 16 << 10,
		Observer:   rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Observer() != Observer(rec) {
		t.Fatal("Checkpointer.Observer() does not round-trip the configured recorder")
	}

	state := make([]byte, 48<<10)
	loop, err := NewLoop(ck, 2, func() []byte { return state })
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for it := 0; it < 20; it++ {
		loop.Tick(ctx, it)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}

	// Histograms: every phase an SSD-less PMEM save goes through must have
	// fired, and percentiles must be ordered.
	snap := rec.Snapshot()
	if snap.Published == 0 {
		t.Fatalf("no published checkpoints recorded: %+v", snap)
	}
	save := snap.Phase(PhaseSave)
	if save.Count != 10 {
		t.Errorf("save spans = %d, want 10 (20 ticks at interval 2)", save.Count)
	}
	if save.P50 > save.P95 || save.P95 > save.P99 || save.P99 > save.Max {
		t.Errorf("percentiles out of order: p50=%v p95=%v p99=%v max=%v",
			save.P50, save.P95, save.P99, save.Max)
	}
	if snap.Phase(PhaseSnapshot).Count != 10 {
		t.Errorf("snapshot spans = %d, want 10 (Loop instrumentation)", snap.Phase(PhaseSnapshot).Count)
	}

	// Metrics endpoint: scrape and check the summary quantiles are present.
	srv, addr, err := ServeMetrics("127.0.0.1:0", rec)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`pccheck_save_seconds{quantile="0.5"}`,
		`pccheck_save_seconds{quantile="0.95"}`,
		`pccheck_save_seconds{quantile="0.99"}`,
		`pccheck_slot_wait_seconds{quantile="0.99"}`,
		"pccheck_published_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}

	// Trace export: valid JSON, contains the paper-pipeline span names.
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"save", "slot-wait", "copy", "persist", "barrier", "publish", "snapshot"} {
		if !seen[want] {
			t.Errorf("trace missing %q events", want)
		}
	}
}

// TestObservabilityDistributed checks the per-rank agree spans emitted by
// SaveConsistent when workers carry observers.
func TestObservabilityDistributed(t *testing.T) {
	const world = 3
	trs := NewLocalTransports(world)
	recs := make([]*Recorder, world)
	workers := make([]*Worker, world)
	for r := 0; r < world; r++ {
		recs[r] = NewFlightRecorder(0)
		ck, _, err := CreateVolatile(Config{MaxBytes: 4 << 10, Observer: recs[r]})
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		w, err := NewWorker(ck, trs[r])
		if err != nil {
			t.Fatal(err)
		}
		workers[r] = w
	}

	const rounds = 4
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			payload := make([]byte, 2<<10)
			for i := 0; i < rounds; i++ {
				if _, err := workers[rank].SaveConsistent(context.Background(), payload); err != nil {
					t.Errorf("rank %d round %d: %v", rank, i, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	for r := 0; r < world; r++ {
		agree := recs[r].Snapshot().Phase(PhaseAgree)
		if agree.Count != rounds {
			t.Errorf("rank %d: agree spans = %d, want %d", r, agree.Count, rounds)
		}
		found := false
		for _, ev := range recs[r].TakeEvents() {
			if ev.Phase == PhaseAgree {
				if ev.Rank != int32(r) {
					t.Errorf("agree event carries rank %d, want %d", ev.Rank, r)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("rank %d: no agree events in the ring", r)
		}
	}
}

// TestObserverOffIsFree pins the zero-overhead claim at the public API
// level: a Checkpointer built without an Observer must emit nothing and
// never touch observability state.
func TestObserverOffIsFree(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if ck.Observer() != nil {
		t.Fatal("observer should be nil when not configured")
	}
	if _, err := ck.Save(context.Background(), make([]byte, 1<<10)); err != nil {
		t.Fatal(err)
	}
}
