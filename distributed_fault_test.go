package pccheck

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

// fastDistConfig sizes failure detection for in-process tests.
func fastDistConfig(p DegradedPolicy) DistConfig {
	return DistConfig{
		Heartbeat:        10 * time.Millisecond,
		HeartbeatTimeout: 60 * time.Millisecond,
		CommitDeadline:   50 * time.Millisecond,
		SendTimeout:      200 * time.Millisecond,
		Degraded:         p,
	}
}

// TestExcludeDeadKeepsGoodputNonzero is the degraded-mode contract end to
// end: one rank dies mid-training, the survivors keep committing under
// ExcludeDead, and the goodput ledger shows both the failure (rank_deaths,
// dead_ranks) and the nonzero goodput that is the whole point of the
// policy.
func TestExcludeDeadKeepsGoodputNonzero(t *testing.T) {
	const world = 3
	transports := NewLocalTransports(world)
	led := NewLedger(LedgerConfig{SlowdownBudget: 1.1}, NewFlightRecorder(256))
	cfg := fastDistConfig(ExcludeDead)

	workers := make([]*Worker, world)
	for rank := 0; rank < world; rank++ {
		c := Config{MaxBytes: 1024, Concurrent: 2, Writers: 2}
		if rank == 0 {
			c.Observer = led // rank 0 sees the death/rejoin instants
		}
		ck, _, err := CreateVolatile(c)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ck.Close() })
		w, err := NewWorkerWith(ck, transports[rank], cfg)
		if err != nil {
			t.Fatal(err)
		}
		workers[rank] = w
		t.Cleanup(func() { w.Close() })
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	saveAll := func(ranks []int, tag byte) map[int]uint64 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		out := make(map[int]uint64)
		for _, rank := range ranks {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				payload := bytes.Repeat([]byte{tag}, 256)
				a, err := workers[rank].SaveConsistent(ctx, payload)
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				mu.Lock()
				out[rank] = a
				mu.Unlock()
			}(rank)
		}
		wg.Wait()
		return out
	}

	// Round 1: the whole group trains and commits.
	if got := saveAll([]int{0, 1, 2}, 0xA1); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("round 1 agreed %v", got)
	}
	led.IterDone(10*time.Millisecond, true)

	// Rank 2 dies (its coordination stops; transport stays open, so only
	// the heartbeat can notice).
	workers[2].Close()

	// The survivors keep training: two more checkpointed iterations.
	for i, tag := range []byte{0xA2, 0xA3} {
		got := saveAll([]int{0, 1}, tag)
		want := uint64(2 + i)
		if got[0] != want || got[1] != want {
			t.Fatalf("degraded round agreed %v, want %d", got, want)
		}
		led.IterDone(10*time.Millisecond, true)
	}

	dead := workers[0].DeadRanks()
	if len(dead) != 1 || dead[0] != 2 {
		t.Fatalf("leader DeadRanks = %v, want [2]", dead)
	}
	rep := led.Report()
	if rep.RankDeaths < 1 {
		t.Fatalf("ledger rank_deaths = %d, want ≥ 1", rep.RankDeaths)
	}
	if rep.DeadRanks != 1 {
		t.Fatalf("ledger dead_ranks = %d, want 1", rep.DeadRanks)
	}
	if rep.GoodputRatio <= 0 {
		t.Fatalf("goodput ratio %v — degraded mode did not keep training useful", rep.GoodputRatio)
	}
	if rep.Iterations != 3 {
		t.Fatalf("iterations = %d, want 3", rep.Iterations)
	}
}

// TestWorkerRejoinAfterRestart exercises the public rejoin surface: a
// worker closes, a replacement attaches to the same transport, resyncs to
// the group's consistent ID, and SaveConsistent works again for everyone.
func TestWorkerRejoinAfterRestart(t *testing.T) {
	const world = 3
	transports := NewLocalTransports(world)
	cfg := fastDistConfig(ExcludeDead)
	workers := make([]*Worker, world)
	for rank := 0; rank < world; rank++ {
		ck, _, err := CreateVolatile(Config{MaxBytes: 1024, Concurrent: 2, Writers: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ck.Close() })
		w, err := NewWorkerWith(ck, transports[rank], cfg)
		if err != nil {
			t.Fatal(err)
		}
		workers[rank] = w
	}
	t.Cleanup(func() {
		for _, w := range workers {
			w.Close()
		}
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	round := func(ranks []int, tag byte) map[int]uint64 {
		var wg sync.WaitGroup
		var mu sync.Mutex
		out := make(map[int]uint64)
		for _, rank := range ranks {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				a, err := workers[rank].SaveConsistent(ctx, bytes.Repeat([]byte{tag}, 128))
				if err != nil {
					t.Errorf("rank %d: %v", rank, err)
					return
				}
				mu.Lock()
				out[rank] = a
				mu.Unlock()
			}(rank)
		}
		wg.Wait()
		return out
	}

	round([]int{0, 1, 2}, 0xB1)
	workers[1].Close() // rank 1 "crashes"
	round([]int{0, 2}, 0xB2)
	round([]int{0, 2}, 0xB3)

	// Restart rank 1: fresh engine + worker on the surviving transport.
	ck, _, err := CreateVolatile(Config{MaxBytes: 1024, Concurrent: 2, Writers: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck.Close() })
	nw, err := NewWorkerWith(ck, transports[1], cfg)
	if err != nil {
		t.Fatal(err)
	}
	workers[1] = nw
	rid, err := nw.Rejoin(ctx)
	if err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if rid != 3 {
		t.Fatalf("rejoin resynced to %d, want 3", rid)
	}
	if nw.LatestConsistent() != 3 {
		t.Fatalf("LatestConsistent after rejoin = %d, want 3", nw.LatestConsistent())
	}

	got := round([]int{0, 1, 2}, 0xB4)
	// The rejoined rank's local engine restarted from counter 0, so its
	// first post-rejoin save publishes ID 1 and the group minimum reflects
	// that — what matters is that all ranks agree and nothing regressed
	// below what the protocol guarantees (the agreement is monotone per
	// rank, and the rejoined rank's resync pinned it at 3... unless the
	// round minimum is lower, which the monotone guard absorbs).
	if got[0] != got[1] || got[1] != got[2] {
		t.Fatalf("post-rejoin round disagreed: %v", got)
	}
}
