package pccheck

import (
	"context"
	"math"
	"testing"
	"time"
)

func TestAdaptiveLoopValidation(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.05}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.0}, func() []byte { return nil }); err == nil {
		t.Fatal("q=1 accepted")
	}
	if _, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.1, MinInterval: 10, MaxInterval: 5},
		func() []byte { return nil }); err == nil {
		t.Fatal("inverted clamp accepted")
	}
}

func TestAdaptiveLoopDefaults(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.05}, func() []byte { return make([]byte, 64) })
	if err != nil {
		t.Fatal(err)
	}
	if loop.Interval() != 10 {
		t.Fatalf("initial interval = %d, want default 10", loop.Interval())
	}
}

// The controller must converge near Eq. (3)'s f* for a measurable workload:
// iterations of ~1 ms against saves throttled to ~25 ms each.
func TestAdaptiveLoopConvergesToFStar(t *testing.T) {
	const payloadBytes = 50 << 10 // 50 KB
	ck, _, err := CreateVolatile(Config{
		MaxBytes:    payloadBytes,
		Concurrent:  2,
		Writers:     1,
		PerWriterBW: 2 << 20, // 2 MB/s ⇒ ~25 ms per save
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()

	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{
		MaxOverhead:     1.10,
		InitialInterval: 100, // deliberately far off
		Smoothing:       0.5,
	}, func() []byte { return make([]byte, payloadBytes) })
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for it := 0; it < 700; it++ {
		time.Sleep(time.Millisecond) // the "training iteration"
		loop.Tick(ctx)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	// Eq. (3): f* = Tw/(N·q·t) ≈ 0.025 / (2·1.10·0.001) ≈ 11.
	got := loop.Interval()
	if got < 4 || got > 40 {
		iter, tw := loop.Measurements()
		t.Fatalf("adaptive interval = %d (iter %v, tw %v), want ≈11", got, iter, tw)
	}
	if loop.Adjustments() == 0 {
		t.Fatal("controller never adjusted")
	}
	if loop.Saves() < 5 {
		t.Fatalf("only %d saves in 700 iterations", loop.Saves())
	}
}

// When iterations slow down (e.g. input-pipeline contention, §3.4), the same
// overhead budget affords more frequent checkpointing: the interval must
// shrink.
func TestAdaptiveLoopTracksIterationTime(t *testing.T) {
	const payloadBytes = 50 << 10
	run := func(iterSleep time.Duration) int {
		ck, _, err := CreateVolatile(Config{
			MaxBytes:    payloadBytes,
			Concurrent:  2,
			Writers:     1,
			PerWriterBW: 2 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.10, InitialInterval: 20, Smoothing: 0.5},
			func() []byte { return make([]byte, payloadBytes) })
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for it := 0; it < 300; it++ {
			time.Sleep(iterSleep)
			loop.Tick(ctx)
		}
		if err := loop.Drain(); err != nil {
			t.Fatal(err)
		}
		return loop.Interval()
	}
	fast := run(500 * time.Microsecond)
	slow := run(4 * time.Millisecond)
	if slow >= fast {
		t.Fatalf("slower iterations should allow a smaller interval: fast=%d slow=%d", fast, slow)
	}
}

func TestAdaptiveLoopClamps(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 1 << 10, Concurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{
		MaxOverhead:     1.05,
		InitialInterval: 7,
		MinInterval:     5,
		MaxInterval:     9,
	}, func() []byte { return make([]byte, 512) })
	if err != nil {
		t.Fatal(err)
	}
	// Unthrottled saves are nearly instant ⇒ f* would collapse to 1, but
	// the clamp holds it at MinInterval.
	ctx := context.Background()
	for it := 0; it < 200; it++ {
		loop.Tick(ctx)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := loop.Interval(); got < 5 || got > 9 {
		t.Fatalf("interval %d escaped clamp [5,9]", got)
	}
}

// decisionLoop builds an AdaptiveLoop over the production observer chain
// Ledger → decision.Recorder → flight Recorder, returning the pieces the
// retune edge-case tests poke at.
func decisionLoop(t *testing.T, lcfg LedgerConfig) (*AdaptiveLoop, *Ledger, *DecisionRecorder) {
	t.Helper()
	dec := NewDecisionRecorder(DecisionConfig{}, NewFlightRecorder(0))
	led := NewLedger(lcfg, dec)
	ck, _, err := CreateVolatile(Config{MaxBytes: 1 << 10, Observer: led})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ck.Close() })
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.10, InitialInterval: 10}, func() []byte { return make([]byte, 256) })
	if err != nil {
		t.Fatal(err)
	}
	return loop, led, dec
}

// Before any save has completed, Tw is zero and Eq. (3) is undefined: the
// retune must be a no-op that records no decision, not a collapse to
// MinInterval.
func TestRetuneNoMeasuredTwIsNoOp(t *testing.T) {
	loop, _, dec := decisionLoop(t, LedgerConfig{SlowdownBudget: 1.10})
	loop.mu.Lock()
	loop.ewmaIter = 0.001
	loop.ewmaTw = 0 // no measured saves yet
	loop.retuneLocked()
	adjusts, interval := loop.adjusts, loop.interval
	loop.mu.Unlock()
	if adjusts != 0 || interval != 10 {
		t.Errorf("retune with Tw=0 acted: adjusts=%d interval=%d", adjusts, interval)
	}
	sum := dec.Summary()
	if sum.Total != 0 || sum.Pending != 0 {
		t.Errorf("retune with Tw=0 recorded a decision: %+v", sum)
	}
}

// A retune taken while the ledger's slowdown EWMA is above the budget must
// carry InBreach in its recorded inputs — the regret analysis needs to
// separate decisions made under pressure from steady-state ones.
func TestRetuneRecordsBudgetBreach(t *testing.T) {
	loop, led, dec := decisionLoop(t, LedgerConfig{
		SlowdownBudget:   1.05,
		BaselineIterTime: time.Millisecond,
		Window:           4,
	})
	// Four 3 ms iterations against the 1 ms baseline: slowdown 3 ≫ q.
	for i := 0; i < 4; i++ {
		led.IterDone(3*time.Millisecond, true)
	}
	if _, in := led.Breach(); !in {
		t.Fatal("ledger not in breach after the slow block")
	}
	loop.mu.Lock()
	loop.ewmaIter = 0.001
	loop.ewmaTw = 0.02
	loop.retuneLocked()
	loop.mu.Unlock()
	dec.Finalize() // drain-join against the block the slow iterations closed
	ds := dec.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	d := ds[0]
	if !d.Inputs.InBreach {
		t.Error("retune under breach not marked InBreach")
	}
	if !d.Scored || d.Outcome != "drain-join" {
		t.Errorf("scored %v outcome %q, want drain-join against the breach block", d.Scored, d.Outcome)
	}
	if len(d.Rejected) < 2 {
		t.Errorf("retune carries %d alternatives, want ≥ 2", len(d.Rejected))
	}
}

// When the ledger's engine-measured write time drifts away from the
// goroutine-observed EWMA (queueing, external load), the retune must trust
// the ledger — both for the new interval and for the recorded inputs.
func TestRetunePrefersLedgerMeasuredTw(t *testing.T) {
	loop, led, dec := decisionLoop(t, LedgerConfig{SlowdownBudget: 1.10})
	// Engine-measured saves: 50 ms spans, no slot wait. This is far above
	// the 1 ms the loop's own EWMA last saw.
	led.Emit(Event{TS: 1, Dur: int64(50 * time.Millisecond), Phase: PhaseSave, Slot: -1, Writer: -1, Rank: -1})
	measured := led.ObservedTw().Seconds()
	if measured <= 0.01 {
		t.Fatalf("ledger ObservedTw = %v, want the 50 ms save span reflected", measured)
	}
	loop.mu.Lock()
	loop.ewmaIter = 0.001
	loop.ewmaTw = 0.001 // stale goroutine view: would re-derive f=1
	loop.retuneLocked()
	interval := loop.interval
	loop.mu.Unlock()
	want := int(math.Ceil(measured / (float64(loop.n) * loop.q * 0.001)))
	if interval != want {
		t.Errorf("interval %d, want %d from the ledger-measured Tw", interval, want)
	}
	dec.Finalize()
	ds := dec.Decisions()
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	if got := ds[0].Inputs.TwSeconds; math.Abs(got-measured) > 1e-9 {
		t.Errorf("recorded TwSeconds %v, want ledger-measured %v (not the stale EWMA 0.001)", got, measured)
	}
}

// TestRetuneNilDecisionRecorderAddsNoAllocations: with no decision recorder
// in the chain the retune path must stay allocation-free — the probe is one
// branch.
func TestRetuneNilDecisionRecorderAddsNoAllocations(t *testing.T) {
	led := NewLedger(LedgerConfig{SlowdownBudget: 1.10}, NewFlightRecorder(0))
	ck, _, err := CreateVolatile(Config{MaxBytes: 1 << 10, Observer: led})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.10}, func() []byte { return make([]byte, 256) })
	if err != nil {
		t.Fatal(err)
	}
	if loop.dec != nil {
		t.Fatal("chain without a decision recorder yielded a non-nil probe")
	}
	loop.mu.Lock()
	loop.ewmaIter = 0.001
	loop.ewmaTw = 0.02
	loop.retuneLocked() // warm: settle the interval so re-runs are steady-state
	allocs := testing.AllocsPerRun(100, loop.retuneLocked)
	loop.mu.Unlock()
	if allocs > 0 {
		t.Errorf("retune with nil decision recorder allocates %v per call, want 0", allocs)
	}
}
