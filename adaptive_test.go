package pccheck

import (
	"context"
	"testing"
	"time"
)

func TestAdaptiveLoopValidation(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.05}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.0}, func() []byte { return nil }); err == nil {
		t.Fatal("q=1 accepted")
	}
	if _, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.1, MinInterval: 10, MaxInterval: 5},
		func() []byte { return nil }); err == nil {
		t.Fatal("inverted clamp accepted")
	}
}

func TestAdaptiveLoopDefaults(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.05}, func() []byte { return make([]byte, 64) })
	if err != nil {
		t.Fatal(err)
	}
	if loop.Interval() != 10 {
		t.Fatalf("initial interval = %d, want default 10", loop.Interval())
	}
}

// The controller must converge near Eq. (3)'s f* for a measurable workload:
// iterations of ~1 ms against saves throttled to ~25 ms each.
func TestAdaptiveLoopConvergesToFStar(t *testing.T) {
	const payloadBytes = 50 << 10 // 50 KB
	ck, _, err := CreateVolatile(Config{
		MaxBytes:    payloadBytes,
		Concurrent:  2,
		Writers:     1,
		PerWriterBW: 2 << 20, // 2 MB/s ⇒ ~25 ms per save
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()

	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{
		MaxOverhead:     1.10,
		InitialInterval: 100, // deliberately far off
		Smoothing:       0.5,
	}, func() []byte { return make([]byte, payloadBytes) })
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for it := 0; it < 700; it++ {
		time.Sleep(time.Millisecond) // the "training iteration"
		loop.Tick(ctx)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	// Eq. (3): f* = Tw/(N·q·t) ≈ 0.025 / (2·1.10·0.001) ≈ 11.
	got := loop.Interval()
	if got < 4 || got > 40 {
		iter, tw := loop.Measurements()
		t.Fatalf("adaptive interval = %d (iter %v, tw %v), want ≈11", got, iter, tw)
	}
	if loop.Adjustments() == 0 {
		t.Fatal("controller never adjusted")
	}
	if loop.Saves() < 5 {
		t.Fatalf("only %d saves in 700 iterations", loop.Saves())
	}
}

// When iterations slow down (e.g. input-pipeline contention, §3.4), the same
// overhead budget affords more frequent checkpointing: the interval must
// shrink.
func TestAdaptiveLoopTracksIterationTime(t *testing.T) {
	const payloadBytes = 50 << 10
	run := func(iterSleep time.Duration) int {
		ck, _, err := CreateVolatile(Config{
			MaxBytes:    payloadBytes,
			Concurrent:  2,
			Writers:     1,
			PerWriterBW: 2 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{MaxOverhead: 1.10, InitialInterval: 20, Smoothing: 0.5},
			func() []byte { return make([]byte, payloadBytes) })
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		for it := 0; it < 300; it++ {
			time.Sleep(iterSleep)
			loop.Tick(ctx)
		}
		if err := loop.Drain(); err != nil {
			t.Fatal(err)
		}
		return loop.Interval()
	}
	fast := run(500 * time.Microsecond)
	slow := run(4 * time.Millisecond)
	if slow >= fast {
		t.Fatalf("slower iterations should allow a smaller interval: fast=%d slow=%d", fast, slow)
	}
}

func TestAdaptiveLoopClamps(t *testing.T) {
	ck, _, err := CreateVolatile(Config{MaxBytes: 1 << 10, Concurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	loop, err := NewAdaptiveLoop(ck, AdaptiveConfig{
		MaxOverhead:     1.05,
		InitialInterval: 7,
		MinInterval:     5,
		MaxInterval:     9,
	}, func() []byte { return make([]byte, 512) })
	if err != nil {
		t.Fatal(err)
	}
	// Unthrottled saves are nearly instant ⇒ f* would collapse to 1, but
	// the clamp holds it at MinInterval.
	ctx := context.Background()
	for it := 0; it < 200; it++ {
		loop.Tick(ctx)
	}
	if err := loop.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := loop.Interval(); got < 5 || got > 9 {
		t.Fatalf("interval %d escaped clamp [5,9]", got)
	}
}
