package pccheck

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

func bbObserverChain() Observer {
	return NewLedger(LedgerConfig{SlowdownBudget: 1.05},
		NewDecisionRecorder(DecisionConfig{}, NewFlightRecorder(1<<10)))
}

var bbCfg = BlackBoxConfig{
	Bytes:      64 << 10,
	FrameBytes: 4096,
	FlushEvery: -1, // explicit flushes: deterministic tests
}

// TestBlackBoxPublicAPI exercises the whole public surface: Create with
// BlackBox on, explicit flush, and PostMortemFile on the restart path.
func TestBlackBoxPublicAPI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.pcc")
	payload := make([]byte, 4<<10)
	ck, err := Create(path, Config{
		MaxBytes: int64(len(payload)), Concurrent: 2, Writers: 2,
		Observer: bbObserverChain(), BlackBox: bbCfg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := ck.Save(ctx, payload); err != nil {
			t.Fatal(err)
		}
	}
	if seq, err := ck.FlushBlackBox(); err != nil || seq != 1 {
		t.Fatalf("FlushBlackBox = (%d, %v), want (1, nil)", seq, err)
	}
	// Live-process view.
	if pm, err := ck.PostMortem(); err != nil || pm.LastSeq() != 1 {
		t.Fatalf("live PostMortem = (%+v, %v)", pm, err)
	}
	if err := ck.Close(); err != nil { // Close writes one final frame
		t.Fatal(err)
	}

	pm, err := PostMortemFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if pm.LastSeq() < 2 {
		t.Fatalf("post-mortem last seq = %d, want >= 2 (flush + final)", pm.LastSeq())
	}
	if len(pm.Events()) == 0 {
		t.Fatal("post mortem has no events")
	}
	rep, ok := pm.LastReport()
	if !ok {
		t.Fatal("post mortem has no goodput report")
	}
	if rep.LastPublishedCounter != 3 {
		t.Fatalf("final report's last published counter = %d, want 3", rep.LastPublishedCounter)
	}
}

// TestPostMortemFileWithoutBlackBox: files created before the black box
// existed (or with it disabled) answer ErrNoBlackBox, not a decode error.
func TestPostMortemFileWithoutBlackBox(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.pcc")
	ck, err := Create(path, Config{MaxBytes: 1024, Concurrent: 1, Writers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Save(context.Background(), make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := RecoverFile(path); err != nil {
		t.Fatalf("plain file must still recover: %v", err)
	}
	if _, err := PostMortemFile(path); !errors.Is(err, ErrNoBlackBox) {
		t.Fatalf("PostMortemFile = %v, want ErrNoBlackBox", err)
	}
}

// TestLoopTickAllocParity is the Loop half of the alloc-parity table: a
// non-checkpointing Tick (the per-iteration fast path the training loop
// pays on every single step) must allocate nothing, with observability
// off, with the full observer chain, and with a black box attached.
func TestLoopTickAllocParity(t *testing.T) {
	payload := make([]byte, 1024)
	mk := func(o Observer, bb BlackBoxConfig) *Loop {
		ck, _, err := CreateVolatile(Config{
			MaxBytes: int64(len(payload)), Concurrent: 1, Writers: 1,
			Observer: o, BlackBox: bb,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { ck.Close() })
		// Huge interval: every measured Tick takes the non-checkpointing
		// path. The snapshot+Save path is covered by the Save parity test.
		loop, err := NewLoop(ck, 1<<30, func() []byte { return payload })
		if err != nil {
			t.Fatal(err)
		}
		return loop
	}
	ctx := context.Background()
	measure := func(l *Loop) float64 {
		it := 0
		return testing.AllocsPerRun(200, func() {
			l.Tick(ctx, it)
			it++
		})
	}

	baseline := measure(mk(nil, BlackBoxConfig{}))
	cases := []struct {
		name string
		o    Observer
		bb   BlackBoxConfig
	}{
		{"recorder", NewFlightRecorder(1 << 10), BlackBoxConfig{}},
		{"recorder+ledger", bbObserverChain(), BlackBoxConfig{}},
		{"recorder+ledger+blackbox", bbObserverChain(), bbCfg},
	}
	for _, tc := range cases {
		if got := measure(mk(tc.o, tc.bb)); got > baseline {
			t.Errorf("%s: Tick allocates %.2f/iter vs %.2f baseline", tc.name, got, baseline)
		}
	}
}
