package pccheck

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"
)

func listenLoopback() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }

func newWorkerGroup(t *testing.T, world int, maxBytes int64) ([]*Worker, []*Memory) {
	t.Helper()
	transports := NewLocalTransports(world)
	workers := make([]*Worker, world)
	mems := make([]*Memory, world)
	for rank := 0; rank < world; rank++ {
		ck, mem, err := CreateVolatile(Config{MaxBytes: maxBytes, Concurrent: 2, Writers: 2, Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWorker(ck, transports[rank])
		if err != nil {
			t.Fatal(err)
		}
		workers[rank] = w
		mems[rank] = mem
		t.Cleanup(func() { ck.Close() })
	}
	return workers, mems
}

func TestNewWorkerValidation(t *testing.T) {
	if _, err := NewWorker(nil, nil); err == nil {
		t.Fatal("nil inputs accepted")
	}
}

func TestSaveConsistentAgreement(t *testing.T) {
	const world = 4
	workers, _ := newWorkerGroup(t, world, 1024)
	var wg sync.WaitGroup
	agreed := make([]uint64, world)
	for rank, w := range workers {
		wg.Add(1)
		go func(rank int, w *Worker) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(rank + 1)}, 512)
			a, err := w.SaveConsistent(context.Background(), payload)
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			agreed[rank] = a
		}(rank, w)
	}
	wg.Wait()
	for rank, a := range agreed {
		if a != agreed[0] {
			t.Fatalf("rank %d agreed %d, rank 0 agreed %d", rank, a, agreed[0])
		}
		if workers[rank].LatestConsistent() != agreed[0] {
			t.Fatalf("rank %d LatestConsistent = %d", rank, workers[rank].LatestConsistent())
		}
	}
}

func TestLoadConsistentRoundTrip(t *testing.T) {
	const world = 3
	workers, _ := newWorkerGroup(t, world, 1024)
	payloads := make([][]byte, world)
	var wg sync.WaitGroup
	for rank, w := range workers {
		wg.Add(1)
		go func(rank int, w *Worker) {
			defer wg.Done()
			payloads[rank] = bytes.Repeat([]byte{byte(0x10 + rank)}, 700)
			if _, err := w.SaveConsistent(context.Background(), payloads[rank]); err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}(rank, w)
	}
	wg.Wait()
	for rank, w := range workers {
		got, counter, err := w.LoadConsistent()
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if counter != w.LatestConsistent() {
			t.Fatalf("rank %d counter %d != agreed %d", rank, counter, w.LatestConsistent())
		}
		if !bytes.Equal(got, payloads[rank]) {
			t.Fatalf("rank %d partition mismatch", rank)
		}
	}
}

func TestLoadConsistentRejectsNoAgreement(t *testing.T) {
	workers, _ := newWorkerGroup(t, 1, 256)
	if _, _, err := workers[0].LoadConsistent(); !IsNoCheckpoint(err) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestWorkerRankAndWorld(t *testing.T) {
	workers, _ := newWorkerGroup(t, 2, 256)
	if workers[0].Rank() != 0 || workers[1].Rank() != 1 {
		t.Fatal("ranks wrong")
	}
	if workers[0].WorldSize() != 2 {
		t.Fatal("world size wrong")
	}
	if workers[0].Checkpointer() == nil {
		t.Fatal("Checkpointer accessor nil")
	}
}

// A multi-round run followed by a cluster-wide crash: every worker must
// recover its partition at the agreed checkpoint, never a mixed state.
func TestDistributedCrashConsistency(t *testing.T) {
	const world, rounds = 3, 5
	workers, mems := newWorkerGroup(t, world, 2048)
	content := func(rank, round int) []byte {
		return bytes.Repeat([]byte{byte(rank*16 + round)}, 900)
	}
	var wg sync.WaitGroup
	for rank, w := range workers {
		wg.Add(1)
		go func(rank int, w *Worker) {
			defer wg.Done()
			for round := 1; round <= rounds; round++ {
				if rank == 1 {
					time.Sleep(time.Millisecond) // straggler
				}
				if _, err := w.SaveConsistent(context.Background(), content(rank, round)); err != nil {
					t.Errorf("rank %d round %d: %v", rank, round, err)
					return
				}
			}
		}(rank, w)
	}
	wg.Wait()

	agreed := workers[0].LatestConsistent()
	for _, mem := range mems {
		mem.Crash()
	}
	// Recover each partition from its crashed device; all must be at the
	// same round, at least as new as the agreement.
	var baseRound = -1
	for rank, mem := range mems {
		payload, counter, err := mem.ForkCrashed()
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		if counter < agreed {
			t.Fatalf("rank %d recovered %d < agreed %d", rank, counter, agreed)
		}
		round := int(payload[0]) - rank*16
		if baseRound == -1 {
			baseRound = round
		}
		if round != baseRound {
			t.Fatalf("rank %d recovered round %d, rank 0 round %d — mixed-iteration restore", rank, round, baseRound)
		}
		if want := content(rank, round); !bytes.Equal(payload, want) {
			t.Fatalf("rank %d payload corrupt", rank)
		}
	}
}

func TestPartitionRangeReExport(t *testing.T) {
	off, n, err := PartitionRange(100, 1, 4)
	if err != nil || off != 25 || n != 25 {
		t.Fatalf("PartitionRange: %d %d %v", off, n, err)
	}
}

func TestTCPWorkersEndToEnd(t *testing.T) {
	const world = 3
	ln, err := listenLoopback()
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	leaderCh := make(chan Transport, 1)
	go func() {
		tr, err := ListenLeader(ctx, ln, world)
		if err == nil {
			leaderCh <- tr
		}
	}()
	transports := make([]Transport, world)
	for rank := 1; rank < world; rank++ {
		tr, err := DialWorker(ctx, ln.Addr().String(), rank, world)
		if err != nil {
			t.Fatal(err)
		}
		transports[rank] = tr
	}
	select {
	case transports[0] = <-leaderCh:
	case <-ctx.Done():
		t.Fatal("leader did not come up")
	}
	for _, tr := range transports {
		defer tr.Close()
	}

	workers := make([]*Worker, world)
	for rank := 0; rank < world; rank++ {
		ck, _, err := CreateVolatile(Config{MaxBytes: 512})
		if err != nil {
			t.Fatal(err)
		}
		defer ck.Close()
		if workers[rank], err = NewWorker(ck, transports[rank]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, world)
	for rank, w := range workers {
		wg.Add(1)
		go func(rank int, w *Worker) {
			defer wg.Done()
			agreed, err := w.SaveConsistent(ctx, []byte(fmt.Sprintf("partition-%d", rank)))
			if err != nil {
				errs <- fmt.Errorf("rank %d: %w", rank, err)
				return
			}
			if agreed != 1 {
				errs <- fmt.Errorf("rank %d agreed %d, want 1", rank, agreed)
			}
		}(rank, w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// A worker whose local publish never completed its coordination round can
// still restore the agreed (older) checkpoint from its retained slots.
func TestLoadConsistentFallsBackToRetainedVersion(t *testing.T) {
	workers, _ := newWorkerGroup(t, 2, 1024)
	var wg sync.WaitGroup
	for rank, w := range workers {
		wg.Add(1)
		go func(rank int, w *Worker) {
			defer wg.Done()
			if _, err := w.SaveConsistent(context.Background(), bytes.Repeat([]byte{byte(rank + 1)}, 400)); err != nil {
				t.Errorf("rank %d: %v", rank, err)
			}
		}(rank, w)
	}
	wg.Wait()
	agreed := workers[0].LatestConsistent()

	// Worker 0 publishes a newer local checkpoint whose round never
	// completes (its peer crashed before saving).
	if _, err := workers[0].Checkpointer().Save(context.Background(), bytes.Repeat([]byte{0xCC}, 400)); err != nil {
		t.Fatal(err)
	}
	payload, counter, err := workers[0].LoadConsistent()
	if err != nil {
		t.Fatal(err)
	}
	if counter != agreed {
		t.Fatalf("restored %d, want agreed %d", counter, agreed)
	}
	if !bytes.Equal(payload, bytes.Repeat([]byte{1}, 400)) {
		t.Fatal("fallback payload mismatch")
	}
}
